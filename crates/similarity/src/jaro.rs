//! Jaro and Jaro-Winkler string similarity.
//!
//! Jaro-Winkler is the standard comparator for short personal names in
//! record linkage (Christen, *Data Matching*, 2012); it rewards strings that
//! agree on a common prefix, which fits names corrupted by typing or
//! transcription errors further to the right.
//!
//! The public functions dispatch on [`SimKernel`]: the `fast` engine runs
//! the scratch-buffer match scan from `kernel` (ASCII byte path, no per-call
//! allocation); the `reference` engine is the original collect-then-scan
//! implementation, kept verbatim as the bit-identity baseline.

use crate::clamp01;
use crate::kernel::{self, SimKernel};

/// Jaro similarity between two strings in `[0, 1]`.
///
/// Defined over the number of matching characters `m` (equal characters no
/// further apart than half the longer length) and transpositions `t`:
/// `jaro = (m/|a| + m/|b| + (m - t)/m) / 3`, with `jaro = 1` for two empty
/// strings and `0` when there are no matching characters.
pub fn jaro(a: &str, b: &str) -> f64 {
    jaro_k(SimKernel::from_env(), a, b)
}

/// [`jaro`] under an explicit kernel engine.
pub(crate) fn jaro_k(kernel: SimKernel, a: &str, b: &str) -> f64 {
    match kernel {
        SimKernel::Reference => {
            let a: Vec<char> = a.chars().collect();
            let b: Vec<char> = b.chars().collect();
            jaro_chars(&a, &b)
        }
        SimKernel::Fast => kernel::jaro_fast(a, b),
    }
}

fn jaro_chars(a: &[char], b: &[char]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    // Characters of `a` that match some unused character of `b` within the
    // search window, in order of appearance in `a`.
    let mut a_matches = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                a_matches.push(ca);
                break;
            }
        }
    }
    let m = a_matches.len();
    if m == 0 {
        return 0.0;
    }
    // Matched characters of `b` in order of appearance in `b`.
    let b_matches: Vec<char> =
        b.iter().zip(&b_used).filter_map(|(&c, &used)| used.then_some(c)).collect();
    let transpositions = a_matches.iter().zip(&b_matches).filter(|(x, y)| x != y).count() / 2;
    let m = m as f64;
    let t = transpositions as f64;
    clamp01((m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0)
}

/// Jaro-Winkler similarity with the standard prefix scale `p = 0.1` and
/// maximum rewarded prefix length 4.
///
/// ```
/// use transer_similarity::jaro_winkler;
/// assert!((jaro_winkler("martha", "marhta") - 0.9611).abs() < 1e-3);
/// assert_eq!(jaro_winkler("smith", "smith"), 1.0);
/// ```
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    jaro_winkler_with(a, b, 0.1, 4)
}

/// [`jaro_winkler`] under an explicit kernel engine.
pub(crate) fn jaro_winkler_k(kernel: SimKernel, a: &str, b: &str) -> f64 {
    jaro_winkler_with_k(kernel, a, b, 0.1, 4)
}

/// Jaro-Winkler similarity with a configurable prefix scale and maximum
/// prefix length.
///
/// `jw = jaro + ℓ · p · (1 − jaro)` where `ℓ` is the length of the common
/// prefix capped at `max_prefix`. `prefix_scale` must satisfy
/// `prefix_scale * max_prefix ≤ 1` for the result to stay in `[0, 1]`;
/// values are clamped defensively regardless.
pub fn jaro_winkler_with(a: &str, b: &str, prefix_scale: f64, max_prefix: usize) -> f64 {
    jaro_winkler_with_k(SimKernel::from_env(), a, b, prefix_scale, max_prefix)
}

/// [`jaro_winkler_with`] under an explicit kernel engine.
pub(crate) fn jaro_winkler_with_k(
    kernel: SimKernel,
    a: &str,
    b: &str,
    prefix_scale: f64,
    max_prefix: usize,
) -> f64 {
    match kernel {
        SimKernel::Reference => {
            let av: Vec<char> = a.chars().collect();
            let bv: Vec<char> = b.chars().collect();
            let j = jaro_chars(&av, &bv);
            let prefix = av.iter().zip(&bv).take(max_prefix).take_while(|(x, y)| x == y).count();
            clamp01(j + prefix as f64 * prefix_scale * (1.0 - j))
        }
        SimKernel::Fast => kernel::jaro_winkler_fast(a, b, prefix_scale, max_prefix),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-3, "{a} vs {b}");
    }

    #[test]
    fn jaro_known_values() {
        // Classic record-linkage test pairs.
        close(jaro("martha", "marhta"), 0.9444);
        close(jaro("dixon", "dicksonx"), 0.7667);
        close(jaro("jellyfish", "smellyfish"), 0.8963);
    }

    #[test]
    fn jaro_winkler_known_values() {
        close(jaro_winkler("martha", "marhta"), 0.9611);
        close(jaro_winkler("dixon", "dicksonx"), 0.8133);
        close(jaro_winkler("dwayne", "duane"), 0.84);
    }

    #[test]
    fn identical_and_disjoint() {
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro_winkler("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro_winkler("abc", "xyz"), 0.0);
    }

    #[test]
    fn empty_strings() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("", "a"), 0.0);
        assert_eq!(jaro_winkler("", ""), 1.0);
    }

    #[test]
    fn winkler_rewards_prefix() {
        // Same edit distance, but the shared prefix lifts the first pair.
        let with_prefix = jaro_winkler("jones", "jonas");
        let no_prefix = jaro_winkler("sjone", "asjon");
        assert!(with_prefix > no_prefix);
        assert!(jaro_winkler("martha", "marhta") >= jaro("martha", "marhta"));
    }

    #[test]
    fn unicode_handled_per_char() {
        assert_eq!(jaro("müller", "müller"), 1.0);
        assert!(jaro("müller", "mueller") > 0.7);
    }

    #[test]
    fn single_char() {
        assert_eq!(jaro("a", "a"), 1.0);
        assert_eq!(jaro("a", "b"), 0.0);
    }

    #[test]
    fn engines_agree_on_edge_shapes() {
        let long_a = "entity resolution at scale ".repeat(4);
        let long_b = "entity res0lution at scale ".repeat(4);
        for (a, b) in [
            ("", ""),
            ("", "abc"),
            ("martha", "marhta"),
            ("dixon", "dicksonx"),
            ("müller", "mueller"),
            ("наука", "наука о данных"),
            ("a\u{0301}bc", "abc"),
            (long_a.as_str(), long_b.as_str()),
        ] {
            assert_eq!(
                jaro_k(SimKernel::Fast, a, b).to_bits(),
                jaro_k(SimKernel::Reference, a, b).to_bits(),
                "jaro {a:?} vs {b:?}"
            );
            assert_eq!(
                jaro_winkler_k(SimKernel::Fast, a, b).to_bits(),
                jaro_winkler_k(SimKernel::Reference, a, b).to_bits(),
                "jw {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn equal_inputs_short_circuit_pins_bit_pattern() {
        for s in ["", "abc", "müller", " x "] {
            assert_eq!(jaro_k(SimKernel::Fast, s, s).to_bits(), 1.0f64.to_bits());
            assert_eq!(jaro_winkler_k(SimKernel::Fast, s, s).to_bits(), 1.0f64.to_bits());
            assert_eq!(
                jaro_k(SimKernel::Reference, s, s).to_bits(),
                jaro_k(SimKernel::Fast, s, s).to_bits()
            );
            assert_eq!(
                jaro_winkler_k(SimKernel::Reference, s, s).to_bits(),
                jaro_winkler_k(SimKernel::Fast, s, s).to_bits()
            );
        }
    }
}

//! Longest common subsequence similarity.

use crate::clamp01;

/// Length of the longest common subsequence of two strings (over chars).
pub fn lcs_len(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    let mut prev = vec![0usize; short.len() + 1];
    let mut curr = vec![0usize; short.len() + 1];
    for &cl in long.iter() {
        for (j, &cs) in short.iter().enumerate() {
            curr[j + 1] = if cl == cs { prev[j] + 1 } else { prev[j + 1].max(curr[j]) };
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// LCS length normalised by the longer string length: `lcs / max(|a|, |b|)`,
/// with `1.0` for two empty strings.
pub fn lcs_similarity(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let longest = la.max(lb);
    if longest == 0 {
        return 1.0;
    }
    clamp01(lcs_len(a, b) as f64 / longest as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        assert_eq!(lcs_len("abcde", "ace"), 3);
        assert_eq!(lcs_len("abc", "abc"), 3);
        assert_eq!(lcs_len("abc", "def"), 0);
        assert_eq!(lcs_len("", "abc"), 0);
        assert_eq!(lcs_len("aggtab", "gxtxayb"), 4);
    }

    #[test]
    fn similarity_bounds() {
        assert_eq!(lcs_similarity("", ""), 1.0);
        assert_eq!(lcs_similarity("abc", "abc"), 1.0);
        assert_eq!(lcs_similarity("abc", "xyz"), 0.0);
        assert!((lcs_similarity("abcde", "ace") - 0.6).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        for (a, b) in [("abcde", "ace"), ("aggtab", "gxtxayb")] {
            assert_eq!(lcs_len(a, b), lcs_len(b, a));
        }
    }
}

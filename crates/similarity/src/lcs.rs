//! Longest common subsequence similarity.
//!
//! The public functions dispatch on [`SimKernel`]: the `fast` engine runs
//! the scratch-buffer two-row DP from `kernel` (ASCII byte path, no per-call
//! allocation); the `reference` engine is the original collect-then-DP
//! implementation, kept verbatim as the bit-identity baseline.

use crate::clamp01;
use crate::kernel::{self, SimKernel};

/// Length of the longest common subsequence of two strings (over chars).
pub fn lcs_len(a: &str, b: &str) -> usize {
    lcs_len_k(SimKernel::from_env(), a, b)
}

/// [`lcs_len`] under an explicit kernel engine.
pub(crate) fn lcs_len_k(kernel: SimKernel, a: &str, b: &str) -> usize {
    match kernel {
        SimKernel::Reference => lcs_len_reference(a, b),
        SimKernel::Fast => {
            if a == b {
                // The LCS of a string with itself is the whole string.
                return if a.is_ascii() { a.len() } else { a.chars().count() };
            }
            kernel::lcs_len_with_lens(a, b).0
        }
    }
}

/// The pinned reference: two-row DP over collected chars.
fn lcs_len_reference(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    let mut prev = vec![0usize; short.len() + 1];
    let mut curr = vec![0usize; short.len() + 1];
    for &cl in long.iter() {
        for (j, &cs) in short.iter().enumerate() {
            curr[j + 1] = if cl == cs { prev[j] + 1 } else { prev[j + 1].max(curr[j]) };
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// LCS length normalised by the longer string length: `lcs / max(|a|, |b|)`,
/// with `1.0` for two empty strings.
pub fn lcs_similarity(a: &str, b: &str) -> f64 {
    lcs_similarity_k(SimKernel::from_env(), a, b)
}

/// [`lcs_similarity`] under an explicit kernel engine. The fast engine
/// traverses each string once (LCS length and both char lengths come out
/// of the same kernel call). Equal inputs short-circuit to exactly `1.0`:
/// the LCS equals the full length `n`, and `clamp01(n/n) = 1.0` bit-for-bit
/// for every finite `n` (two empty strings are defined as 1).
pub(crate) fn lcs_similarity_k(kernel: SimKernel, a: &str, b: &str) -> f64 {
    match kernel {
        SimKernel::Reference => {
            let la = a.chars().count();
            let lb = b.chars().count();
            let longest = la.max(lb);
            if longest == 0 {
                return 1.0;
            }
            clamp01(lcs_len_reference(a, b) as f64 / longest as f64)
        }
        SimKernel::Fast => {
            if a == b {
                return 1.0;
            }
            let (len, la, lb) = kernel::lcs_len_with_lens(a, b);
            // a != b implies at least one string is non-empty.
            clamp01(len as f64 / la.max(lb) as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        assert_eq!(lcs_len("abcde", "ace"), 3);
        assert_eq!(lcs_len("abc", "abc"), 3);
        assert_eq!(lcs_len("abc", "def"), 0);
        assert_eq!(lcs_len("", "abc"), 0);
        assert_eq!(lcs_len("aggtab", "gxtxayb"), 4);
    }

    #[test]
    fn similarity_bounds() {
        assert_eq!(lcs_similarity("", ""), 1.0);
        assert_eq!(lcs_similarity("abc", "abc"), 1.0);
        assert_eq!(lcs_similarity("abc", "xyz"), 0.0);
        assert!((lcs_similarity("abcde", "ace") - 0.6).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        for (a, b) in [("abcde", "ace"), ("aggtab", "gxtxayb")] {
            assert_eq!(lcs_len(a, b), lcs_len(b, a));
        }
    }

    #[test]
    fn engines_agree_on_edge_shapes() {
        let long_a = "longest common subsequence ".repeat(4);
        let long_b = "longest comm0n subsequence ".repeat(4);
        for (a, b) in [
            ("", ""),
            ("", "abc"),
            ("abcde", "ace"),
            ("aggtab", "gxtxayb"),
            ("наука", "наука о данных"),
            ("a\u{0301}bc", "abc"),
            (long_a.as_str(), long_b.as_str()),
        ] {
            assert_eq!(
                lcs_len_k(SimKernel::Fast, a, b),
                lcs_len_k(SimKernel::Reference, a, b),
                "len {a:?} vs {b:?}"
            );
            assert_eq!(
                lcs_similarity_k(SimKernel::Fast, a, b).to_bits(),
                lcs_similarity_k(SimKernel::Reference, a, b).to_bits(),
                "similarity {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn equal_inputs_short_circuit_pins_bit_pattern() {
        for s in ["", "abc", "наука", " spaced "] {
            assert_eq!(lcs_similarity_k(SimKernel::Fast, s, s).to_bits(), 1.0f64.to_bits());
            assert_eq!(
                lcs_similarity_k(SimKernel::Reference, s, s).to_bits(),
                lcs_similarity_k(SimKernel::Fast, s, s).to_bits()
            );
            assert_eq!(lcs_len_k(SimKernel::Fast, s, s), lcs_len_k(SimKernel::Reference, s, s));
        }
    }
}

//! Set-based similarities over tokens and q-grams: Jaccard, Dice, overlap.
//!
//! Two families of entry points compute the same scores:
//!
//! * the `*_sets` functions over `HashSet<String>` — the pinned reference
//!   representation;
//! * the `*_sorted` functions over sorted deduplicated slices of any
//!   ordered element type (`String` tokens, packed `u64` q-grams, interned
//!   `u32` ids) — an `O(n + m)` merge with no hashing. All three scores
//!   depend only on `(|A ∩ B|, |A|, |B|)`, and a sorted deduplicated slice
//!   has exactly the cardinality and intersection structure of the set it
//!   was built from, so the two families are bit-identical whenever the
//!   element mapping is injective.

use std::collections::HashSet;

use crate::clamp01;
use crate::qgram::{qgrams, tokens};

fn set_of(items: Vec<String>) -> HashSet<String> {
    items.into_iter().collect()
}

/// The whitespace token set of a string (the sets [`jaccard_tokens`] and
/// friends operate on) — exposed so callers can tokenise once per record
/// and reuse the set across many pairs.
pub fn token_set(s: &str) -> HashSet<String> {
    set_of(tokens(s))
}

/// The padded character q-gram set of a string; see [`token_set`].
pub fn qgram_set(s: &str, q: usize) -> HashSet<String> {
    set_of(qgrams(s, q))
}

/// Jaccard similarity of two prepared sets; `jaccard_tokens(a, b)` equals
/// `jaccard_sets(&token_set(a), &token_set(b))` exactly.
pub fn jaccard_sets(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = (a.len() + b.len()) as f64 - inter;
    clamp01(inter / union)
}

/// Dice coefficient of two prepared sets; see [`jaccard_sets`].
pub fn dice_sets(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count() as f64;
    clamp01(2.0 * inter / (a.len() + b.len()) as f64)
}

/// Jaccard similarity of the whitespace token sets of two strings
/// (the paper's comparator for non-name textual attributes).
pub fn jaccard_tokens(a: &str, b: &str) -> f64 {
    jaccard_sets(&set_of(tokens(a)), &set_of(tokens(b)))
}

/// Jaccard similarity of the padded character q-gram sets of two strings.
pub fn jaccard_qgram(a: &str, b: &str, q: usize) -> f64 {
    jaccard_sets(&set_of(qgrams(a, q)), &set_of(qgrams(b, q)))
}

/// Dice coefficient of the whitespace token sets.
pub fn dice_tokens(a: &str, b: &str) -> f64 {
    dice_sets(&set_of(tokens(a)), &set_of(tokens(b)))
}

/// Dice coefficient of the padded character q-gram sets.
pub fn dice_qgram(a: &str, b: &str, q: usize) -> f64 {
    dice_sets(&set_of(qgrams(a, q)), &set_of(qgrams(b, q)))
}

/// Overlap coefficient of the whitespace token sets:
/// `|A ∩ B| / min(|A|, |B|)`. Useful when one value truncates the other
/// (e.g. abbreviated venue names).
pub fn overlap_tokens(a: &str, b: &str) -> f64 {
    overlap_sets(&token_set(a), &token_set(b))
}

/// Overlap coefficient of two prepared sets; see [`jaccard_sets`].
pub fn overlap_sets(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count() as f64;
    clamp01(inter / a.len().min(b.len()) as f64)
}

/// `|A ∩ B|` of two sorted deduplicated slices by a linear merge.
fn intersection_sorted<T: Ord>(a: &[T], b: &[T]) -> usize {
    let (mut i, mut j, mut inter) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter
}

/// Jaccard similarity of two sorted deduplicated slices; bit-identical to
/// [`jaccard_sets`] over the corresponding sets (same intersection count
/// fed through the same float expression).
pub fn jaccard_sorted<T: Ord>(a: &[T], b: &[T]) -> f64 {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]) && b.windows(2).all(|w| w[0] < w[1]));
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = intersection_sorted(a, b) as f64;
    let union = (a.len() + b.len()) as f64 - inter;
    clamp01(inter / union)
}

/// Dice coefficient of two sorted deduplicated slices; see
/// [`jaccard_sorted`].
pub fn dice_sorted<T: Ord>(a: &[T], b: &[T]) -> f64 {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]) && b.windows(2).all(|w| w[0] < w[1]));
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = intersection_sorted(a, b) as f64;
    clamp01(2.0 * inter / (a.len() + b.len()) as f64)
}

/// Overlap coefficient of two sorted deduplicated slices; see
/// [`jaccard_sorted`].
pub fn overlap_sorted<T: Ord>(a: &[T], b: &[T]) -> f64 {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]) && b.windows(2).all(|w| w[0] < w[1]));
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = intersection_sorted(a, b) as f64;
    clamp01(inter / a.len().min(b.len()) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_tokens_basic() {
        assert_eq!(jaccard_tokens("a b c", "a b c"), 1.0);
        assert_eq!(jaccard_tokens("a b", "c d"), 0.0);
        // {a,b,c} vs {b,c,d}: inter 2, union 4.
        assert!((jaccard_tokens("a b c", "b c d") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jaccard_ignores_token_order_and_case() {
        assert_eq!(jaccard_tokens("deep learning for er", "ER for Deep Learning"), 1.0);
    }

    #[test]
    fn empty_conventions() {
        assert_eq!(jaccard_tokens("", ""), 1.0);
        assert_eq!(jaccard_tokens("a", ""), 0.0);
        assert_eq!(dice_tokens("", ""), 1.0);
        assert_eq!(overlap_tokens("", ""), 1.0);
        assert_eq!(overlap_tokens("", "a"), 0.0);
    }

    #[test]
    fn dice_vs_jaccard_relation() {
        // dice = 2j/(1+j) >= j for j in [0,1].
        for (a, b) in [("a b c", "b c d"), ("x y", "y z"), ("p q r s", "p q")] {
            let j = jaccard_tokens(a, b);
            let d = dice_tokens(a, b);
            assert!((d - 2.0 * j / (1.0 + j)).abs() < 1e-12, "{a} / {b}");
        }
    }

    #[test]
    fn overlap_rewards_containment() {
        assert_eq!(overlap_tokens("very long venue name", "venue name"), 1.0);
        assert!(overlap_tokens("a b", "a c") > 0.0);
    }

    #[test]
    fn sorted_merge_matches_hash_sets_bitwise() {
        let cases = [
            ("a b c", "b c d"),
            ("", ""),
            ("a", ""),
            ("deep learning for er", "ER for Deep Learning"),
            ("very long venue name", "venue name"),
            ("x y", "y z"),
        ];
        for (a, b) in cases {
            let (sa, sb) = (token_set(a), token_set(b));
            let mut va: Vec<String> = sa.iter().cloned().collect();
            let mut vb: Vec<String> = sb.iter().cloned().collect();
            va.sort_unstable();
            vb.sort_unstable();
            assert_eq!(jaccard_sorted(&va, &vb).to_bits(), jaccard_sets(&sa, &sb).to_bits());
            assert_eq!(dice_sorted(&va, &vb).to_bits(), dice_sets(&sa, &sb).to_bits());
            assert_eq!(overlap_sorted(&va, &vb).to_bits(), overlap_sets(&sa, &sb).to_bits());
        }
    }

    #[test]
    fn sorted_merge_works_over_integer_ids() {
        // Same (inter, |a|, |b|) structure as {a,b,c} vs {b,c,d}.
        assert!((jaccard_sorted(&[1u32, 2, 3], &[2u32, 3, 4]) - 0.5).abs() < 1e-12);
        assert_eq!(overlap_sorted(&[7u64, 9, 11], &[9u64]), 1.0);
        assert_eq!(dice_sorted::<u32>(&[], &[]), 1.0);
        assert_eq!(dice_sorted(&[1u32], &[]), 0.0);
    }

    #[test]
    fn qgram_variants() {
        assert_eq!(jaccard_qgram("abc", "abc", 2), 1.0);
        assert!(jaccard_qgram("nicholas", "nicolas", 2) > 0.6);
        assert!(dice_qgram("nicholas", "nicolas", 2) >= jaccard_qgram("nicholas", "nicolas", 2));
        assert_eq!(jaccard_qgram("", "", 2), 1.0);
    }
}

//! Set-based similarities over tokens and q-grams: Jaccard, Dice, overlap.

use std::collections::HashSet;

use crate::clamp01;
use crate::qgram::{qgrams, tokens};

fn set_of(items: Vec<String>) -> HashSet<String> {
    items.into_iter().collect()
}

/// The whitespace token set of a string (the sets [`jaccard_tokens`] and
/// friends operate on) — exposed so callers can tokenise once per record
/// and reuse the set across many pairs.
pub fn token_set(s: &str) -> HashSet<String> {
    set_of(tokens(s))
}

/// The padded character q-gram set of a string; see [`token_set`].
pub fn qgram_set(s: &str, q: usize) -> HashSet<String> {
    set_of(qgrams(s, q))
}

/// Jaccard similarity of two prepared sets; `jaccard_tokens(a, b)` equals
/// `jaccard_sets(&token_set(a), &token_set(b))` exactly.
pub fn jaccard_sets(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = (a.len() + b.len()) as f64 - inter;
    clamp01(inter / union)
}

/// Dice coefficient of two prepared sets; see [`jaccard_sets`].
pub fn dice_sets(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count() as f64;
    clamp01(2.0 * inter / (a.len() + b.len()) as f64)
}

/// Jaccard similarity of the whitespace token sets of two strings
/// (the paper's comparator for non-name textual attributes).
pub fn jaccard_tokens(a: &str, b: &str) -> f64 {
    jaccard_sets(&set_of(tokens(a)), &set_of(tokens(b)))
}

/// Jaccard similarity of the padded character q-gram sets of two strings.
pub fn jaccard_qgram(a: &str, b: &str, q: usize) -> f64 {
    jaccard_sets(&set_of(qgrams(a, q)), &set_of(qgrams(b, q)))
}

/// Dice coefficient of the whitespace token sets.
pub fn dice_tokens(a: &str, b: &str) -> f64 {
    dice_sets(&set_of(tokens(a)), &set_of(tokens(b)))
}

/// Dice coefficient of the padded character q-gram sets.
pub fn dice_qgram(a: &str, b: &str, q: usize) -> f64 {
    dice_sets(&set_of(qgrams(a, q)), &set_of(qgrams(b, q)))
}

/// Overlap coefficient of the whitespace token sets:
/// `|A ∩ B| / min(|A|, |B|)`. Useful when one value truncates the other
/// (e.g. abbreviated venue names).
pub fn overlap_tokens(a: &str, b: &str) -> f64 {
    overlap_sets(&token_set(a), &token_set(b))
}

/// Overlap coefficient of two prepared sets; see [`jaccard_sets`].
pub fn overlap_sets(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count() as f64;
    clamp01(inter / a.len().min(b.len()) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_tokens_basic() {
        assert_eq!(jaccard_tokens("a b c", "a b c"), 1.0);
        assert_eq!(jaccard_tokens("a b", "c d"), 0.0);
        // {a,b,c} vs {b,c,d}: inter 2, union 4.
        assert!((jaccard_tokens("a b c", "b c d") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jaccard_ignores_token_order_and_case() {
        assert_eq!(jaccard_tokens("deep learning for er", "ER for Deep Learning"), 1.0);
    }

    #[test]
    fn empty_conventions() {
        assert_eq!(jaccard_tokens("", ""), 1.0);
        assert_eq!(jaccard_tokens("a", ""), 0.0);
        assert_eq!(dice_tokens("", ""), 1.0);
        assert_eq!(overlap_tokens("", ""), 1.0);
        assert_eq!(overlap_tokens("", "a"), 0.0);
    }

    #[test]
    fn dice_vs_jaccard_relation() {
        // dice = 2j/(1+j) >= j for j in [0,1].
        for (a, b) in [("a b c", "b c d"), ("x y", "y z"), ("p q r s", "p q")] {
            let j = jaccard_tokens(a, b);
            let d = dice_tokens(a, b);
            assert!((d - 2.0 * j / (1.0 + j)).abs() < 1e-12, "{a} / {b}");
        }
    }

    #[test]
    fn overlap_rewards_containment() {
        assert_eq!(overlap_tokens("very long venue name", "venue name"), 1.0);
        assert!(overlap_tokens("a b", "a c") > 0.0);
    }

    #[test]
    fn qgram_variants() {
        assert_eq!(jaccard_qgram("abc", "abc", 2), 1.0);
        assert!(jaccard_qgram("nicholas", "nicolas", 2) > 0.6);
        assert!(dice_qgram("nicholas", "nicolas", 2) >= jaccard_qgram("nicholas", "nicolas", 2));
        assert_eq!(jaccard_qgram("", "", 2), 1.0);
    }
}

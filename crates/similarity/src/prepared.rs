//! Per-value precomputation for the record-pair comparison hot path.
//!
//! Applying a [`Measure`] to a record pair repeats work that depends only
//! on *one* side: tokenising, building q-gram sets, Soundex encoding,
//! numeric parsing. A value compared against `k` candidates pays that cost
//! `k` times. [`Measure::prepare`] hoists the per-value work into a
//! [`PreparedText`], and [`Measure::prepared`] consumes two prepared
//! values — producing **bit-identical** scores to [`Measure::text`], which
//! the tests below pin down measure by measure.
//!
//! The representation depends on the [`SimKernel`] engine. The `reference`
//! engine prepares `HashSet<String>` profiles and scores them with hashed
//! intersections; the `fast` engine prepares *sorted* profiles — sorted
//! deduplicated token/gram vectors, q-grams packed into `u64`s for
//! `q ≤ 3`, or interned `u32` ids when the caller supplies a
//! [`StrInterner`] — and scores them with `O(n + m)` merges. All set
//! scores depend only on `(|A ∩ B|, |A|, |B|)` and every fast
//! representation preserves exactly that structure, so the engines are
//! bit-identical (proptested in `tests/kernel_equivalence.rs`).

use std::collections::HashSet;

use transer_common::StrInterner;

use crate::jaccard::{
    dice_sets, dice_sorted, jaccard_sets, jaccard_sorted, overlap_sets, overlap_sorted, qgram_set,
    token_set,
};
use crate::jaro::{jaro_k, jaro_winkler_k};
use crate::kernel::{packed_qgram_profile, SimKernel, PACK_MAX_Q};
use crate::lcs::lcs_similarity_k;
use crate::levenshtein::levenshtein_similarity_k;
use crate::monge_elkan::monge_elkan_tokens;
use crate::qgram::{qgrams, tokens};
use crate::{numeric_similarity, soundex, year_similarity, Measure};

/// A textual value with the measure-specific per-value work already done.
///
/// Produced by [`Measure::prepare`]; only meaningful when consumed by the
/// *same* measure's [`Measure::prepared`] — and, for the set families, by
/// a value prepared under the same engine (and the same interner for the
/// id variants).
#[derive(Debug, Clone, PartialEq)]
pub enum PreparedText {
    /// The raw string — character-level measures (Jaro, Jaro-Winkler,
    /// Levenshtein, LCS, Exact) have no useful per-value precomputation.
    Raw(String),
    /// Whitespace token set (TokenJaccard / TokenDice / TokenOverlap),
    /// reference engine.
    TokenSet(HashSet<String>),
    /// Padded character q-gram set (QgramJaccard / QgramDice), reference
    /// engine.
    QgramSet(HashSet<String>),
    /// Sorted deduplicated whitespace tokens, fast engine.
    SortedTokens(Vec<String>),
    /// Sorted deduplicated padded q-grams (`q > 3`), fast engine.
    SortedGrams(Vec<String>),
    /// Sorted packed padded q-grams (`q ≤ 3`, 21 bits per char), fast
    /// engine.
    PackedGrams(Vec<u64>),
    /// Sorted deduplicated interned token ids, fast engine. Ids are only
    /// comparable against values interned by the same [`StrInterner`].
    TokenIds(Vec<u32>),
    /// Sorted deduplicated interned q-gram ids, fast engine; same
    /// same-interner contract as [`PreparedText::TokenIds`].
    GramIds(Vec<u32>),
    /// Token list in order (Monge-Elkan).
    TokenList(Vec<String>),
    /// Soundex code.
    SoundexCode(String),
    /// Parsed numeric value (Numeric / Year); `None` when unparseable.
    Parsed(Option<f64>),
}

/// Which set similarity to finish an intersection count with. Keeps the
/// representation dispatch (hash set / sorted strings / packed / ids)
/// written once instead of per measure.
#[derive(Clone, Copy)]
enum SetOp {
    Jaccard,
    Dice,
    Overlap,
}

impl SetOp {
    fn sets(self, a: &HashSet<String>, b: &HashSet<String>) -> f64 {
        match self {
            SetOp::Jaccard => jaccard_sets(a, b),
            SetOp::Dice => dice_sets(a, b),
            SetOp::Overlap => overlap_sets(a, b),
        }
    }

    fn sorted<T: Ord>(self, a: &[T], b: &[T]) -> f64 {
        match self {
            SetOp::Jaccard => jaccard_sorted(a, b),
            SetOp::Dice => dice_sorted(a, b),
            SetOp::Overlap => overlap_sorted(a, b),
        }
    }
}

/// Score a token-family pair under `op`; `None` on representation
/// mismatch.
fn token_family(op: SetOp, a: &PreparedText, b: &PreparedText) -> Option<f64> {
    use PreparedText as P;
    match (a, b) {
        (P::TokenSet(x), P::TokenSet(y)) => Some(op.sets(x, y)),
        (P::SortedTokens(x), P::SortedTokens(y)) => Some(op.sorted(x, y)),
        (P::TokenIds(x), P::TokenIds(y)) => Some(op.sorted(x, y)),
        _ => None,
    }
}

/// Score a q-gram-family pair under `op`; `None` on representation
/// mismatch.
fn gram_family(op: SetOp, a: &PreparedText, b: &PreparedText) -> Option<f64> {
    use PreparedText as P;
    match (a, b) {
        (P::QgramSet(x), P::QgramSet(y)) => Some(op.sets(x, y)),
        (P::SortedGrams(x), P::SortedGrams(y)) => Some(op.sorted(x, y)),
        (P::PackedGrams(x), P::PackedGrams(y)) => Some(op.sorted(x, y)),
        (P::GramIds(x), P::GramIds(y)) => Some(op.sorted(x, y)),
        _ => None,
    }
}

/// Sorted deduplicated whitespace tokens — the fast-engine token profile.
pub(crate) fn sorted_token_profile(s: &str) -> Vec<String> {
    let mut t = tokens(s);
    t.sort_unstable();
    t.dedup();
    t
}

impl Measure {
    /// Precompute the per-value state of this measure for `s`, so that
    /// [`Measure::prepared`] can score pairs without re-tokenising.
    pub fn prepare(&self, s: &str) -> PreparedText {
        self.prepare_with(SimKernel::from_env(), s)
    }

    /// [`Measure::prepare`] under an explicit kernel engine.
    pub fn prepare_with(&self, kernel: SimKernel, s: &str) -> PreparedText {
        match (kernel, *self) {
            (_, Measure::MongeElkanJw) => PreparedText::TokenList(tokens(s)),
            (_, Measure::Soundex) => PreparedText::SoundexCode(soundex(s)),
            (_, Measure::Numeric(_) | Measure::Year) => PreparedText::Parsed(s.trim().parse().ok()),
            (
                _,
                Measure::Jaro
                | Measure::JaroWinkler
                | Measure::Levenshtein
                | Measure::Lcs
                | Measure::Exact,
            ) => PreparedText::Raw(s.to_string()),
            (
                SimKernel::Reference,
                Measure::TokenJaccard | Measure::TokenDice | Measure::TokenOverlap,
            ) => PreparedText::TokenSet(token_set(s)),
            (SimKernel::Reference, Measure::QgramJaccard(q) | Measure::QgramDice(q)) => {
                PreparedText::QgramSet(qgram_set(s, q))
            }
            (
                SimKernel::Fast,
                Measure::TokenJaccard | Measure::TokenDice | Measure::TokenOverlap,
            ) => PreparedText::SortedTokens(sorted_token_profile(s)),
            (SimKernel::Fast, Measure::QgramJaccard(q) | Measure::QgramDice(q)) => {
                if q <= PACK_MAX_Q {
                    PreparedText::PackedGrams(packed_qgram_profile(s, q))
                } else {
                    // `qgrams` already returns sorted distinct grams.
                    PreparedText::SortedGrams(qgrams(s, q))
                }
            }
        }
    }

    /// [`Measure::prepare_with`] taking ownership of the string, so the
    /// Raw family (Jaro, Jaro-Winkler, Levenshtein, LCS, Exact) moves it
    /// instead of cloning.
    pub fn prepare_owned_with(&self, kernel: SimKernel, s: String) -> PreparedText {
        match *self {
            Measure::Jaro
            | Measure::JaroWinkler
            | Measure::Levenshtein
            | Measure::Lcs
            | Measure::Exact => PreparedText::Raw(s),
            _ => self.prepare_with(kernel, &s),
        }
    }

    /// [`Measure::prepare_with`] using `interner` for the fast engine's
    /// token and q-gram profiles (`q > 3`), producing dense `u32` id
    /// profiles instead of string profiles.
    ///
    /// Ids are assigned in first-appearance order, so two prepared values
    /// are only comparable when prepared through the **same** interner —
    /// the per-shard contract of the comparison step. Scores are still
    /// independent of the id assignment (only id equality is consulted),
    /// hence bit-identical across interners and to the other
    /// representations.
    pub fn prepare_interned_with(
        &self,
        kernel: SimKernel,
        s: &str,
        interner: &mut StrInterner,
    ) -> PreparedText {
        if kernel == SimKernel::Reference {
            return self.prepare_with(kernel, s);
        }
        match *self {
            Measure::TokenJaccard | Measure::TokenDice | Measure::TokenOverlap => {
                let mut ids: Vec<u32> = tokens(s).iter().map(|t| interner.intern(t)).collect();
                ids.sort_unstable();
                ids.dedup();
                PreparedText::TokenIds(ids)
            }
            Measure::QgramJaccard(q) | Measure::QgramDice(q) if q > PACK_MAX_Q => {
                let mut ids: Vec<u32> = qgrams(s, q).iter().map(|g| interner.intern(g)).collect();
                ids.sort_unstable();
                ids.dedup();
                PreparedText::GramIds(ids)
            }
            _ => self.prepare_with(kernel, s),
        }
    }

    /// [`Measure::prepare_interned_with`] taking ownership of the string,
    /// so the Raw family moves it instead of cloning (the interned analogue
    /// of [`Measure::prepare_owned_with`]).
    pub fn prepare_owned_interned_with(
        &self,
        kernel: SimKernel,
        s: String,
        interner: &mut StrInterner,
    ) -> PreparedText {
        match *self {
            Measure::Jaro
            | Measure::JaroWinkler
            | Measure::Levenshtein
            | Measure::Lcs
            | Measure::Exact => PreparedText::Raw(s),
            _ => self.prepare_interned_with(kernel, &s, interner),
        }
    }

    /// Score two values prepared by **this** measure's [`Measure::prepare`].
    /// Exactly equal (bit-for-bit) to `self.text(a, b)` on the original
    /// strings.
    ///
    /// Mismatched preparations (arguments prepared by a different measure
    /// family or engine) score 0 and bump the
    /// `similarity.prepared.mismatch` counter.
    pub fn prepared(&self, a: &PreparedText, b: &PreparedText) -> f64 {
        self.prepared_with(SimKernel::from_env(), a, b)
    }

    /// [`Measure::prepared`] under an explicit kernel engine.
    pub fn prepared_with(&self, kernel: SimKernel, a: &PreparedText, b: &PreparedText) -> f64 {
        use PreparedText as P;
        let mismatch = || {
            // Mismatched preparations cannot arise from the comparison
            // step (it prepares per measure); treat API misuse as
            // zero similarity instead of panicking, and leave a trace.
            transer_trace::counter("similarity.prepared.mismatch", 1);
            0.0
        };
        match (*self, a, b) {
            (Measure::Jaro, P::Raw(x), P::Raw(y)) => jaro_k(kernel, x, y),
            (Measure::JaroWinkler, P::Raw(x), P::Raw(y)) => jaro_winkler_k(kernel, x, y),
            (Measure::Levenshtein, P::Raw(x), P::Raw(y)) => levenshtein_similarity_k(kernel, x, y),
            (Measure::Lcs, P::Raw(x), P::Raw(y)) => lcs_similarity_k(kernel, x, y),
            (Measure::Exact, P::Raw(x), P::Raw(y)) => {
                if x == y {
                    1.0
                } else {
                    0.0
                }
            }
            (Measure::TokenJaccard, a, b) => {
                token_family(SetOp::Jaccard, a, b).unwrap_or_else(mismatch)
            }
            (Measure::TokenDice, a, b) => token_family(SetOp::Dice, a, b).unwrap_or_else(mismatch),
            (Measure::TokenOverlap, a, b) => {
                token_family(SetOp::Overlap, a, b).unwrap_or_else(mismatch)
            }
            (Measure::QgramJaccard(_), a, b) => {
                gram_family(SetOp::Jaccard, a, b).unwrap_or_else(mismatch)
            }
            (Measure::QgramDice(_), a, b) => {
                gram_family(SetOp::Dice, a, b).unwrap_or_else(mismatch)
            }
            (Measure::MongeElkanJw, P::TokenList(x), P::TokenList(y)) => {
                let inner = |p: &str, q: &str| jaro_winkler_k(kernel, p, q);
                0.5 * (monge_elkan_tokens(x, y, inner) + monge_elkan_tokens(y, x, inner))
            }
            (Measure::Soundex, P::SoundexCode(x), P::SoundexCode(y)) => {
                if x == y {
                    1.0
                } else {
                    0.0
                }
            }
            (Measure::Numeric(max_diff), P::Parsed(x), P::Parsed(y)) => match (x, y) {
                (Some(x), Some(y)) => numeric_similarity(*x, *y, max_diff),
                _ => 0.0,
            },
            (Measure::Year, P::Parsed(x), P::Parsed(y)) => match (x, y) {
                (Some(x), Some(y)) => year_similarity(*x, *y),
                _ => 0.0,
            },
            _ => mismatch(),
        }
    }

    /// Whether [`Measure::number`] consumes numeric values natively rather
    /// than falling back to [`Measure::text`] on their decimal renderings.
    pub fn number_native(&self) -> bool {
        matches!(self, Measure::Numeric(_) | Measure::Year | Measure::Exact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Measure; 14] = [
        Measure::Jaro,
        Measure::JaroWinkler,
        Measure::Levenshtein,
        Measure::TokenJaccard,
        Measure::QgramJaccard(2),
        Measure::TokenDice,
        Measure::QgramDice(3),
        Measure::TokenOverlap,
        Measure::Lcs,
        Measure::MongeElkanJw,
        Measure::Soundex,
        Measure::Exact,
        Measure::Numeric(5.0),
        Measure::Year,
    ];

    const SAMPLES: [&str; 10] = [
        "",
        "a",
        "deep entity matching",
        "Deep  Entity-Matching!",
        "o'brien smith-jones",
        "1999",
        " 2003 ",
        "not a number",
        "наука о данных",
        "1999.5",
    ];

    #[test]
    fn prepared_equals_text_bit_for_bit() {
        for m in ALL {
            for a in SAMPLES {
                for b in SAMPLES {
                    let direct = m.text(a, b);
                    let via = m.prepared(&m.prepare(a), &m.prepare(b));
                    assert!(
                        direct.to_bits() == via.to_bits(),
                        "{m:?} on ({a:?}, {b:?}): direct {direct} != prepared {via}"
                    );
                }
            }
        }
    }

    #[test]
    fn prepared_equals_text_under_both_engines() {
        for kernel in [SimKernel::Fast, SimKernel::Reference] {
            for m in ALL {
                for a in SAMPLES {
                    for b in SAMPLES {
                        let direct = m.text_with(kernel, a, b);
                        let pa = m.prepare_with(kernel, a);
                        let pb = m.prepare_with(kernel, b);
                        let via = m.prepared_with(kernel, &pa, &pb);
                        assert!(
                            direct.to_bits() == via.to_bits(),
                            "{m:?}/{} on ({a:?}, {b:?}): direct {direct} != prepared {via}",
                            kernel.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn interned_preparation_is_bit_identical() {
        for m in ALL {
            let mut interner = StrInterner::new();
            for a in SAMPLES {
                for b in SAMPLES {
                    let pa = m.prepare_interned_with(SimKernel::Fast, a, &mut interner);
                    let pb = m.prepare_interned_with(SimKernel::Fast, b, &mut interner);
                    let via = m.prepared_with(SimKernel::Fast, &pa, &pb);
                    let direct = m.text_with(SimKernel::Reference, a, b);
                    assert!(
                        direct.to_bits() == via.to_bits(),
                        "{m:?} on ({a:?}, {b:?}): direct {direct} != interned {via}"
                    );
                }
            }
        }
    }

    #[test]
    fn interned_qgram_profiles_use_ids_only_above_pack_limit() {
        let mut interner = StrInterner::new();
        let p3 =
            Measure::QgramJaccard(3).prepare_interned_with(SimKernel::Fast, "abc", &mut interner);
        assert!(matches!(p3, PreparedText::PackedGrams(_)), "{p3:?}");
        let p4 =
            Measure::QgramJaccard(4).prepare_interned_with(SimKernel::Fast, "abc", &mut interner);
        assert!(matches!(p4, PreparedText::GramIds(_)), "{p4:?}");
    }

    #[test]
    fn prepare_owned_moves_raw_values() {
        for m in [Measure::Jaro, Measure::Levenshtein, Measure::Exact, Measure::Lcs] {
            let p = m.prepare_owned_with(SimKernel::Fast, "martha".to_string());
            assert_eq!(p, PreparedText::Raw("martha".to_string()), "{m:?}");
        }
        // Non-raw families still prepare their own representation.
        let p = Measure::Year.prepare_owned_with(SimKernel::Fast, "1999".to_string());
        assert_eq!(p, PreparedText::Parsed(Some(1999.0)));
    }

    #[test]
    fn mismatched_preparations_score_zero() {
        // API misuse (preparing with one measure, scoring with another)
        // degrades to 0 similarity instead of panicking.
        let token_set = Measure::TokenJaccard.prepare("a b c");
        assert_eq!(Measure::Jaro.prepared(&token_set, &token_set), 0.0);
        assert_eq!(
            Measure::Numeric(5.0).prepared(&token_set, &Measure::Numeric(5.0).prepare("1")),
            0.0
        );
        // Cross-engine representations mismatch too (sorted vs hashed).
        let sorted = Measure::TokenJaccard.prepare_with(SimKernel::Fast, "a b c");
        let hashed = Measure::TokenJaccard.prepare_with(SimKernel::Reference, "a b c");
        assert_eq!(Measure::TokenJaccard.prepared_with(SimKernel::Fast, &sorted, &hashed), 0.0);
    }

    #[test]
    fn number_native_matches_number_dispatch() {
        // Non-native measures must agree with text() on renderings — the
        // contract compare layers rely on when caching renderings.
        for m in ALL {
            let (a, b) = (1999.0, 2003.5);
            if !m.number_native() {
                assert_eq!(m.number(a, b), m.text(&a.to_string(), &b.to_string()), "{m:?}");
            }
        }
        assert!(Measure::Year.number_native());
        assert!(Measure::Exact.number_native());
        assert!(!Measure::TokenJaccard.number_native());
    }

    #[test]
    fn variant_mismatch_is_counted() {
        transer_trace::set_enabled(true);
        let p = Measure::TokenJaccard.prepare("a b");
        assert_eq!(Measure::Jaro.prepared(&p, &p), 0.0);
        let report = transer_trace::drain_report();
        transer_trace::set_enabled(false);
        assert!(report.counters.get("similarity.prepared.mismatch").is_some_and(|&c| c >= 1));
    }
}

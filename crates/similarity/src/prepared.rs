//! Per-value precomputation for the record-pair comparison hot path.
//!
//! Applying a [`Measure`] to a record pair repeats work that depends only
//! on *one* side: tokenising, building q-gram sets, Soundex encoding,
//! numeric parsing. A value compared against `k` candidates pays that cost
//! `k` times. [`Measure::prepare`] hoists the per-value work into a
//! [`PreparedText`], and [`Measure::prepared`] consumes two prepared
//! values — producing **bit-identical** scores to [`Measure::text`], which
//! the tests below pin down measure by measure.

use std::collections::HashSet;

use crate::jaccard::{dice_sets, jaccard_sets, overlap_sets, qgram_set, token_set};
use crate::monge_elkan::monge_elkan_tokens;
use crate::qgram::tokens;
use crate::{
    jaro, jaro_winkler, lcs_similarity, levenshtein_similarity, numeric_similarity, soundex,
    year_similarity, Measure,
};

/// A textual value with the measure-specific per-value work already done.
///
/// Produced by [`Measure::prepare`]; only meaningful when consumed by the
/// *same* measure's [`Measure::prepared`].
#[derive(Debug, Clone, PartialEq)]
pub enum PreparedText {
    /// The raw string — character-level measures (Jaro, Jaro-Winkler,
    /// Levenshtein, LCS, Exact) have no useful per-value precomputation.
    Raw(String),
    /// Whitespace token set (TokenJaccard / TokenDice / TokenOverlap).
    TokenSet(HashSet<String>),
    /// Padded character q-gram set (QgramJaccard / QgramDice).
    QgramSet(HashSet<String>),
    /// Token list in order (Monge-Elkan).
    TokenList(Vec<String>),
    /// Soundex code.
    SoundexCode(String),
    /// Parsed numeric value (Numeric / Year); `None` when unparseable.
    Parsed(Option<f64>),
}

impl Measure {
    /// Precompute the per-value state of this measure for `s`, so that
    /// [`Measure::prepared`] can score pairs without re-tokenising.
    pub fn prepare(&self, s: &str) -> PreparedText {
        match *self {
            Measure::TokenJaccard | Measure::TokenDice | Measure::TokenOverlap => {
                PreparedText::TokenSet(token_set(s))
            }
            Measure::QgramJaccard(q) | Measure::QgramDice(q) => {
                PreparedText::QgramSet(qgram_set(s, q))
            }
            Measure::MongeElkanJw => PreparedText::TokenList(tokens(s)),
            Measure::Soundex => PreparedText::SoundexCode(soundex(s)),
            Measure::Numeric(_) | Measure::Year => PreparedText::Parsed(s.trim().parse().ok()),
            Measure::Jaro
            | Measure::JaroWinkler
            | Measure::Levenshtein
            | Measure::Lcs
            | Measure::Exact => PreparedText::Raw(s.to_string()),
        }
    }

    /// Score two values prepared by **this** measure's [`Measure::prepare`].
    /// Exactly equal (bit-for-bit) to `self.text(a, b)` on the original
    /// strings.
    ///
    /// # Panics
    /// Panics when either argument was prepared by a different measure
    /// family (mismatched [`PreparedText`] variant).
    pub fn prepared(&self, a: &PreparedText, b: &PreparedText) -> f64 {
        use PreparedText as P;
        match (*self, a, b) {
            (Measure::Jaro, P::Raw(x), P::Raw(y)) => jaro(x, y),
            (Measure::JaroWinkler, P::Raw(x), P::Raw(y)) => jaro_winkler(x, y),
            (Measure::Levenshtein, P::Raw(x), P::Raw(y)) => levenshtein_similarity(x, y),
            (Measure::Lcs, P::Raw(x), P::Raw(y)) => lcs_similarity(x, y),
            (Measure::Exact, P::Raw(x), P::Raw(y)) => {
                if x == y {
                    1.0
                } else {
                    0.0
                }
            }
            (Measure::TokenJaccard, P::TokenSet(x), P::TokenSet(y)) => jaccard_sets(x, y),
            (Measure::TokenDice, P::TokenSet(x), P::TokenSet(y)) => dice_sets(x, y),
            (Measure::TokenOverlap, P::TokenSet(x), P::TokenSet(y)) => overlap_sets(x, y),
            (Measure::QgramJaccard(_), P::QgramSet(x), P::QgramSet(y)) => jaccard_sets(x, y),
            (Measure::QgramDice(_), P::QgramSet(x), P::QgramSet(y)) => dice_sets(x, y),
            (Measure::MongeElkanJw, P::TokenList(x), P::TokenList(y)) => {
                0.5 * (monge_elkan_tokens(x, y, jaro_winkler)
                    + monge_elkan_tokens(y, x, jaro_winkler))
            }
            (Measure::Soundex, P::SoundexCode(x), P::SoundexCode(y)) => {
                if x == y {
                    1.0
                } else {
                    0.0
                }
            }
            (Measure::Numeric(max_diff), P::Parsed(x), P::Parsed(y)) => match (x, y) {
                (Some(x), Some(y)) => numeric_similarity(*x, *y, max_diff),
                _ => 0.0,
            },
            (Measure::Year, P::Parsed(x), P::Parsed(y)) => match (x, y) {
                (Some(x), Some(y)) => year_similarity(*x, *y),
                _ => 0.0,
            },
            // Mismatched preparations cannot arise from the comparison
            // step (it prepares per measure); treat API misuse as
            // zero similarity instead of panicking, and leave a trace.
            _ => {
                transer_trace::counter("similarity.prepared.mismatch", 1);
                0.0
            }
        }
    }

    /// Whether [`Measure::number`] consumes numeric values natively rather
    /// than falling back to [`Measure::text`] on their decimal renderings.
    pub fn number_native(&self) -> bool {
        matches!(self, Measure::Numeric(_) | Measure::Year | Measure::Exact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Measure; 14] = [
        Measure::Jaro,
        Measure::JaroWinkler,
        Measure::Levenshtein,
        Measure::TokenJaccard,
        Measure::QgramJaccard(2),
        Measure::TokenDice,
        Measure::QgramDice(3),
        Measure::TokenOverlap,
        Measure::Lcs,
        Measure::MongeElkanJw,
        Measure::Soundex,
        Measure::Exact,
        Measure::Numeric(5.0),
        Measure::Year,
    ];

    const SAMPLES: [&str; 10] = [
        "",
        "a",
        "deep entity matching",
        "Deep  Entity-Matching!",
        "o'brien smith-jones",
        "1999",
        " 2003 ",
        "not a number",
        "наука о данных",
        "1999.5",
    ];

    #[test]
    fn prepared_equals_text_bit_for_bit() {
        for m in ALL {
            for a in SAMPLES {
                for b in SAMPLES {
                    let direct = m.text(a, b);
                    let via = m.prepared(&m.prepare(a), &m.prepare(b));
                    assert!(
                        direct.to_bits() == via.to_bits(),
                        "{m:?} on ({a:?}, {b:?}): direct {direct} != prepared {via}"
                    );
                }
            }
        }
    }

    #[test]
    fn mismatched_preparations_score_zero() {
        // API misuse (preparing with one measure, scoring with another)
        // degrades to 0 similarity instead of panicking.
        let token_set = Measure::TokenJaccard.prepare("a b c");
        assert_eq!(Measure::Jaro.prepared(&token_set, &token_set), 0.0);
        assert_eq!(
            Measure::Numeric(5.0).prepared(&token_set, &Measure::Numeric(5.0).prepare("1")),
            0.0
        );
    }

    #[test]
    fn number_native_matches_number_dispatch() {
        // Non-native measures must agree with text() on renderings — the
        // contract compare layers rely on when caching renderings.
        for m in ALL {
            let (a, b) = (1999.0, 2003.5);
            if !m.number_native() {
                assert_eq!(m.number(a, b), m.text(&a.to_string(), &b.to_string()), "{m:?}");
            }
        }
        assert!(Measure::Year.number_native());
        assert!(Measure::Exact.number_native());
        assert!(!Measure::TokenJaccard.number_native());
    }

    #[test]
    fn variant_mismatch_is_counted() {
        transer_trace::set_enabled(true);
        let p = Measure::TokenJaccard.prepare("a b");
        assert_eq!(Measure::Jaro.prepared(&p, &p), 0.0);
        let report = transer_trace::drain_report();
        transer_trace::set_enabled(false);
        assert!(report.counters.get("similarity.prepared.mismatch").is_some_and(|&c| c >= 1));
    }
}

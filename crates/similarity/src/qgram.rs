//! Tokenisation helpers: whitespace tokens and character q-grams.

use std::collections::HashMap;

/// Split a string into lower-cased whitespace-separated tokens, stripping
/// any character that is neither alphanumeric nor one of `'`/`-` (which are
/// meaningful inside names such as `o'brien` or `smith-jones`).
pub fn tokens(s: &str) -> Vec<String> {
    s.split_whitespace()
        .map(|w| {
            w.chars()
                .filter(|c| c.is_alphanumeric() || *c == '\'' || *c == '-')
                .flat_map(|c| c.to_lowercase())
                .collect::<String>()
        })
        .filter(|w| !w.is_empty())
        .collect()
}

/// The distinct character q-grams of a string, with `q - 1` padding
/// characters (`#`) added on both ends so that string boundaries contribute
/// grams too.
///
/// Returns an empty set for an empty string, and the padded grams otherwise.
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    let mut grams = qgram_multiset(s, q).into_keys().collect::<Vec<_>>();
    grams.sort_unstable();
    grams
}

/// The character q-grams of a string with multiplicities (padded as in
/// [`qgrams`]).
pub fn qgram_multiset(s: &str, q: usize) -> HashMap<String, usize> {
    let mut out = HashMap::new();
    if s.is_empty() || q == 0 {
        return out;
    }
    let pad = q.saturating_sub(1);
    let mut chars: Vec<char> = Vec::with_capacity(s.chars().count() + 2 * pad);
    chars.extend(std::iter::repeat_n('#', pad));
    chars.extend(s.chars().flat_map(|c| c.to_lowercase()));
    chars.extend(std::iter::repeat_n('#', pad));
    if chars.len() < q {
        return out;
    }
    for window in chars.windows(q) {
        *out.entry(window.iter().collect::<String>()).or_insert(0) += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_strip_punctuation_and_case() {
        assert_eq!(tokens("The  Quick, Brown fox!"), ["the", "quick", "brown", "fox"]);
        assert_eq!(tokens("O'Brien Smith-Jones"), ["o'brien", "smith-jones"]);
        assert!(tokens("  ,,  !! ").is_empty());
        assert!(tokens("").is_empty());
    }

    #[test]
    fn bigram_padding() {
        let g = qgrams("ab", 2);
        assert_eq!(g, ["#a", "ab", "b#"]);
    }

    #[test]
    fn qgram_multiset_counts() {
        let m = qgram_multiset("aaa", 2);
        // #a aa aa a# -> aa has multiplicity 2.
        assert_eq!(m.get("aa"), Some(&2));
        assert_eq!(m.get("#a"), Some(&1));
        assert_eq!(m.get("a#"), Some(&1));
    }

    #[test]
    fn empty_and_degenerate() {
        assert!(qgrams("", 2).is_empty());
        assert!(qgrams("abc", 0).is_empty());
        // q = 1 means no padding: unigrams only.
        assert_eq!(qgrams("aba", 1), ["a", "b"]);
    }

    #[test]
    fn grams_are_lowercased() {
        assert_eq!(qgrams("AB", 2), qgrams("ab", 2));
    }
}

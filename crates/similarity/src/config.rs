//! A configurable, serialisable description of which comparator to apply to
//! an attribute, so feature spaces can be declared as data.

use crate::jaccard::{dice_sorted, jaccard_sorted, overlap_sorted};
use crate::jaro::{jaro_k, jaro_winkler_with_k};
use crate::kernel::{packed_qgram_profile, SimKernel, PACK_MAX_Q};
use crate::lcs::lcs_similarity_k;
use crate::levenshtein::levenshtein_similarity_k;
use crate::prepared::sorted_token_profile;
use crate::qgram::qgrams;
use crate::{
    dice_qgram, dice_tokens, exact, jaccard_qgram, jaccard_tokens, monge_elkan, numeric_similarity,
    overlap_tokens, soundex_similarity, year_similarity,
};

/// The similarity measures this crate can apply, as plain data.
///
/// The homogeneous-TL assumption of the paper is that source and target use
/// the *same* `Measure` per attribute; the blocking crate enforces this by
/// sharing one comparison configuration between the two domains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Measure {
    /// Jaro similarity.
    Jaro,
    /// Jaro-Winkler with standard parameters (names).
    JaroWinkler,
    /// Normalised Levenshtein similarity.
    Levenshtein,
    /// Jaccard over whitespace tokens (titles, venues, albums).
    TokenJaccard,
    /// Jaccard over padded character q-grams.
    QgramJaccard(usize),
    /// Dice over whitespace tokens.
    TokenDice,
    /// Dice over padded character q-grams.
    QgramDice(usize),
    /// Overlap coefficient over whitespace tokens.
    TokenOverlap,
    /// Normalised longest-common-subsequence similarity.
    Lcs,
    /// Symmetrised Monge-Elkan with a Jaro-Winkler inner comparator.
    MongeElkanJw,
    /// Soundex phonetic equality.
    Soundex,
    /// Exact string equality.
    Exact,
    /// Linear numeric similarity with the given maximum difference.
    Numeric(f64),
    /// Year similarity (linear, 10-year horizon).
    Year,
}

impl Measure {
    /// Apply the measure to two textual values.
    ///
    /// Numeric measures parse the strings; unparseable values score 0.
    pub fn text(&self, a: &str, b: &str) -> f64 {
        self.text_with(SimKernel::from_env(), a, b)
    }

    /// [`Measure::text`] under an explicit kernel engine. Both engines are
    /// bit-identical; the `fast` engine replaces hashed set intersections
    /// with sorted merges and the char-level kernels with their
    /// allocation-free counterparts.
    pub fn text_with(&self, kernel: SimKernel, a: &str, b: &str) -> f64 {
        match *self {
            Measure::Jaro => jaro_k(kernel, a, b),
            Measure::JaroWinkler => jaro_winkler_with_k(kernel, a, b, 0.1, 4),
            Measure::Levenshtein => levenshtein_similarity_k(kernel, a, b),
            Measure::TokenJaccard => match kernel {
                SimKernel::Reference => jaccard_tokens(a, b),
                SimKernel::Fast => {
                    jaccard_sorted(&sorted_token_profile(a), &sorted_token_profile(b))
                }
            },
            Measure::QgramJaccard(q) => match kernel {
                SimKernel::Reference => jaccard_qgram(a, b, q),
                SimKernel::Fast if q <= PACK_MAX_Q => {
                    jaccard_sorted(&packed_qgram_profile(a, q), &packed_qgram_profile(b, q))
                }
                SimKernel::Fast => jaccard_sorted(&qgrams(a, q), &qgrams(b, q)),
            },
            Measure::TokenDice => match kernel {
                SimKernel::Reference => dice_tokens(a, b),
                SimKernel::Fast => dice_sorted(&sorted_token_profile(a), &sorted_token_profile(b)),
            },
            Measure::QgramDice(q) => match kernel {
                SimKernel::Reference => dice_qgram(a, b, q),
                SimKernel::Fast if q <= PACK_MAX_Q => {
                    dice_sorted(&packed_qgram_profile(a, q), &packed_qgram_profile(b, q))
                }
                SimKernel::Fast => dice_sorted(&qgrams(a, q), &qgrams(b, q)),
            },
            Measure::TokenOverlap => match kernel {
                SimKernel::Reference => overlap_tokens(a, b),
                SimKernel::Fast => {
                    overlap_sorted(&sorted_token_profile(a), &sorted_token_profile(b))
                }
            },
            Measure::Lcs => lcs_similarity_k(kernel, a, b),
            Measure::MongeElkanJw => {
                let inner = |x: &str, y: &str| jaro_winkler_with_k(kernel, x, y, 0.1, 4);
                0.5 * (monge_elkan(a, b, inner) + monge_elkan(b, a, inner))
            }
            Measure::Soundex => soundex_similarity(a, b),
            Measure::Exact => exact(a, b),
            Measure::Numeric(max_diff) => match (a.trim().parse(), b.trim().parse()) {
                (Ok(x), Ok(y)) => numeric_similarity(x, y, max_diff),
                _ => 0.0,
            },
            Measure::Year => match (a.trim().parse(), b.trim().parse()) {
                (Ok(x), Ok(y)) => year_similarity(x, y),
                _ => 0.0,
            },
        }
    }

    /// Apply the measure to two numeric values.
    ///
    /// String measures compare the shortest decimal representations.
    pub fn number(&self, a: f64, b: f64) -> f64 {
        self.number_with(SimKernel::from_env(), a, b)
    }

    /// [`Measure::number`] under an explicit kernel engine.
    pub fn number_with(&self, kernel: SimKernel, a: f64, b: f64) -> f64 {
        match *self {
            Measure::Numeric(max_diff) => numeric_similarity(a, b, max_diff),
            Measure::Year => year_similarity(a, b),
            Measure::Exact => {
                if a == b {
                    1.0
                } else {
                    0.0
                }
            }
            _ => self.text_with(kernel, &a.to_string(), &b.to_string()),
        }
    }
}

/// Apply `measure` to two textual values — free-function form convenient for
/// passing as a closure.
pub fn similarity_for(measure: Measure, a: &str, b: &str) -> f64 {
    measure.text(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaro_winkler;

    #[test]
    fn dispatch_matches_direct_calls() {
        assert_eq!(Measure::JaroWinkler.text("martha", "marhta"), jaro_winkler("martha", "marhta"));
        assert_eq!(Measure::TokenJaccard.text("a b", "b c"), jaccard_tokens("a b", "b c"));
        assert_eq!(Measure::QgramJaccard(2).text("abc", "abd"), jaccard_qgram("abc", "abd", 2));
        assert_eq!(Measure::Exact.text("x", "x"), 1.0);
    }

    #[test]
    fn numeric_measures_parse_text() {
        assert_eq!(Measure::Year.text("1970", "1970"), 1.0);
        assert!((Measure::Year.text(" 1970 ", "1971") - 0.9).abs() < 1e-12);
        assert_eq!(Measure::Year.text("unknown", "1970"), 0.0);
        assert_eq!(Measure::Numeric(5.0).text("1", "2"), 0.8);
    }

    #[test]
    fn number_dispatch() {
        assert_eq!(Measure::Year.number(1970.0, 1970.0), 1.0);
        assert_eq!(Measure::Exact.number(1.0, 1.0), 1.0);
        assert_eq!(Measure::Exact.number(1.0, 2.0), 0.0);
        // Falling back through text comparison still works.
        assert_eq!(Measure::Levenshtein.number(123.0, 123.0), 1.0);
    }

    #[test]
    fn monge_elkan_is_symmetrised() {
        let ab = Measure::MongeElkanJw.text("smith", "smith jones");
        let ba = Measure::MongeElkanJw.text("smith jones", "smith");
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn free_function_form() {
        assert_eq!(similarity_for(Measure::Exact, "a", "a"), 1.0);
    }

    #[test]
    fn engines_agree_across_all_measures() {
        let all = [
            Measure::Jaro,
            Measure::JaroWinkler,
            Measure::Levenshtein,
            Measure::TokenJaccard,
            Measure::QgramJaccard(2),
            Measure::QgramJaccard(4),
            Measure::TokenDice,
            Measure::QgramDice(3),
            Measure::TokenOverlap,
            Measure::Lcs,
            Measure::MongeElkanJw,
            Measure::Soundex,
            Measure::Exact,
            Measure::Numeric(5.0),
            Measure::Year,
        ];
        let samples =
            ["", "deep entity matching", "Deep  Entity-Matching!", "1999", "наука о данных"];
        for m in all {
            for a in samples {
                for b in samples {
                    assert_eq!(
                        m.text_with(SimKernel::Fast, a, b).to_bits(),
                        m.text_with(SimKernel::Reference, a, b).to_bits(),
                        "{m:?} on ({a:?}, {b:?})"
                    );
                    assert_eq!(
                        m.number_with(SimKernel::Fast, 123.0, 124.5).to_bits(),
                        m.number_with(SimKernel::Reference, 123.0, 124.5).to_bits(),
                        "{m:?} number"
                    );
                }
            }
        }
    }
}

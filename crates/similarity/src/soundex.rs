//! Soundex phonetic encoding, useful for person names whose spelling varies
//! while the pronunciation stays stable (`smith` / `smyth`).

/// The 4-character American Soundex code of a string (`letter + 3 digits`),
/// or an empty string when the input contains no ASCII letter.
pub fn soundex(s: &str) -> String {
    let letters: Vec<char> =
        s.chars().filter(|c| c.is_ascii_alphabetic()).map(|c| c.to_ascii_uppercase()).collect();
    let Some(&first) = letters.first() else {
        return String::new();
    };

    fn code(c: char) -> Option<u8> {
        match c {
            'B' | 'F' | 'P' | 'V' => Some(1),
            'C' | 'G' | 'J' | 'K' | 'Q' | 'S' | 'X' | 'Z' => Some(2),
            'D' | 'T' => Some(3),
            'L' => Some(4),
            'M' | 'N' => Some(5),
            'R' => Some(6),
            _ => None, // vowels + H, W, Y
        }
    }

    let mut out = String::with_capacity(4);
    out.push(first);
    let mut last = code(first);
    for &c in &letters[1..] {
        let d = code(c);
        match d {
            Some(d) => {
                // H and W do not reset the previous code; vowels do.
                if last != Some(d) {
                    out.push(char::from(b'0' + d));
                    if out.len() == 4 {
                        return out;
                    }
                }
                last = Some(d);
            }
            None => {
                if c != 'H' && c != 'W' {
                    last = None;
                }
            }
        }
    }
    while out.len() < 4 {
        out.push('0');
    }
    out
}

/// Similarity induced by Soundex: 1.0 when the codes agree, else 0.0; two
/// unencodable strings also score 1.0.
pub fn soundex_similarity(a: &str, b: &str) -> f64 {
    if soundex(a) == soundex(b) {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_codes() {
        assert_eq!(soundex("Robert"), "R163");
        assert_eq!(soundex("Rupert"), "R163");
        assert_eq!(soundex("Ashcraft"), "A261");
        assert_eq!(soundex("Ashcroft"), "A261");
        assert_eq!(soundex("Tymczak"), "T522");
        assert_eq!(soundex("Pfister"), "P236");
        assert_eq!(soundex("Honeyman"), "H555");
    }

    #[test]
    fn smith_variants_collide() {
        assert_eq!(soundex("smith"), soundex("smyth"));
        assert_eq!(soundex_similarity("smith", "smyth"), 1.0);
        assert_eq!(soundex_similarity("smith", "jones"), 0.0);
    }

    #[test]
    fn short_and_empty_inputs() {
        assert_eq!(soundex("A"), "A000");
        assert_eq!(soundex(""), "");
        assert_eq!(soundex("123"), "");
        assert_eq!(soundex_similarity("", ""), 1.0);
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(soundex("ROBERT"), soundex("robert"));
    }
}

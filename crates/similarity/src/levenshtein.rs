//! Levenshtein and Damerau-Levenshtein (optimal string alignment) edit
//! distances plus their normalised similarities.
//!
//! The public functions dispatch on [`SimKernel`]: the `fast` engine uses
//! the Myers bit-parallel core (single `u64` block for strings ≤ 64
//! chars, Hyyrö's multi-block formulation beyond), with an ASCII byte
//! path; the `reference` engine is the original per-call-allocating
//! implementation, kept verbatim as the bit-identity baseline.

use crate::clamp01;
use crate::kernel::{self, SimKernel};

/// Levenshtein edit distance (insertions, deletions, substitutions) between
/// two strings. The fast engine runs Myers' bit-parallel algorithm in
/// `O(|a|·⌈|b|/64⌉)` word operations — one `u64` block when the shorter
/// string fits, Hyyrö's multi-block variant otherwise; both are
/// allocation-free after thread warm-up and agree exactly with the
/// reference DP.
pub fn levenshtein(a: &str, b: &str) -> usize {
    levenshtein_k(SimKernel::from_env(), a, b)
}

/// [`levenshtein`] under an explicit kernel engine.
pub(crate) fn levenshtein_k(kernel: SimKernel, a: &str, b: &str) -> usize {
    match kernel {
        SimKernel::Reference => levenshtein_reference(a, b),
        SimKernel::Fast => {
            if a == b {
                // Distance of identical strings is 0 by definition.
                return 0;
            }
            kernel::lev_distance_with_lens(a, b).0
        }
    }
}

/// The pinned reference: classic two-row DP over collected chars in
/// `O(|a|·|b|)` time and `O(min(|a|,|b|))` space.
fn levenshtein_reference(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    // Keep the inner dimension the shorter string to minimise the rows.
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr = vec![0usize; short.len() + 1];
    for (i, &cl) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &cs) in short.iter().enumerate() {
            let cost = usize::from(cl != cs);
            curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// Damerau-Levenshtein distance in its *optimal string alignment* variant:
/// like Levenshtein but adjacent transpositions count as one edit (each
/// substring may be edited at most once).
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Full DP matrix; attribute values in ER are short strings, so the
    // quadratic memory is negligible and the code stays obvious.
    let cols = b.len() + 1;
    let mut d = vec![0usize; (a.len() + 1) * cols];
    for (j, cell) in d[..cols].iter_mut().enumerate() {
        *cell = j;
    }
    for i in 1..=a.len() {
        d[i * cols] = i;
        for j in 1..=b.len() {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (d[(i - 1) * cols + j] + 1)
                .min(d[i * cols + j - 1] + 1)
                .min(d[(i - 1) * cols + j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(d[(i - 2) * cols + j - 2] + 1);
            }
            d[i * cols + j] = best;
        }
    }
    d[a.len() * cols + b.len()]
}

/// Levenshtein distance normalised into a similarity:
/// `1 − d / max(|a|, |b|)`, with `1.0` for two empty strings.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    levenshtein_similarity_k(SimKernel::from_env(), a, b)
}

/// [`levenshtein_similarity`] under an explicit kernel engine. The fast
/// engine traverses each string once (distance and both lengths come out
/// of the same kernel call) where the reference walks every string twice:
/// `chars().count()` per side and then the re-collect inside the DP.
/// Equal inputs short-circuit to exactly `1.0`: the distance is 0, so the
/// reference computes `clamp01(1.0 - 0.0 / longest)` = `1.0` bit-for-bit
/// (and two empty strings are defined as 1).
pub(crate) fn levenshtein_similarity_k(kernel: SimKernel, a: &str, b: &str) -> f64 {
    match kernel {
        SimKernel::Reference => {
            let la = a.chars().count();
            let lb = b.chars().count();
            let longest = la.max(lb);
            if longest == 0 {
                return 1.0;
            }
            clamp01(1.0 - levenshtein_reference(a, b) as f64 / longest as f64)
        }
        SimKernel::Fast => {
            if a == b {
                return 1.0;
            }
            let (d, la, lb) = kernel::lev_distance_with_lens(a, b);
            // a != b implies at least one string is non-empty.
            clamp01(1.0 - d as f64 / la.max(lb) as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("gumbo", "gambol"), 2);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
    }

    #[test]
    fn damerau_counts_transpositions_once() {
        assert_eq!(levenshtein("ca", "ac"), 2);
        assert_eq!(damerau_levenshtein("ca", "ac"), 1);
        assert_eq!(damerau_levenshtein("smtih", "smith"), 1);
        assert_eq!(damerau_levenshtein("kitten", "sitting"), 3);
        assert_eq!(damerau_levenshtein("", ""), 0);
        assert_eq!(damerau_levenshtein("abc", ""), 3);
    }

    #[test]
    fn osa_variant_property() {
        // The OSA variant famously gives 3 here (true Damerau gives 2).
        assert_eq!(damerau_levenshtein("ca", "abc"), 3);
    }

    #[test]
    fn similarity_normalisation() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("kitten", "sitting");
        assert!((s - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        for (a, b) in [("kitten", "sitting"), ("abc", ""), ("martha", "marhta")] {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
            assert_eq!(damerau_levenshtein(a, b), damerau_levenshtein(b, a));
        }
    }

    #[test]
    fn engines_agree_on_edge_shapes() {
        let long_a = "a".repeat(80) + "xyz";
        let long_b = "a".repeat(80) + "xzy";
        for (a, b) in [
            ("", ""),
            ("", "abc"),
            ("kitten", "sitting"),
            ("наука", "наука о данных"),
            (long_a.as_str(), long_b.as_str()),
            ("a\u{0301}bc", "abc"),
        ] {
            assert_eq!(
                levenshtein_k(SimKernel::Fast, a, b),
                levenshtein_k(SimKernel::Reference, a, b),
                "distance {a:?} vs {b:?}"
            );
            assert_eq!(
                levenshtein_similarity_k(SimKernel::Fast, a, b).to_bits(),
                levenshtein_similarity_k(SimKernel::Reference, a, b).to_bits(),
                "similarity {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn equal_inputs_short_circuit_pins_bit_pattern() {
        for s in ["", "abc", "наука", "a\u{0301}", " spaced out "] {
            let fast = levenshtein_similarity_k(SimKernel::Fast, s, s);
            assert_eq!(fast.to_bits(), 1.0f64.to_bits(), "{s:?}");
            assert_eq!(
                fast.to_bits(),
                levenshtein_similarity_k(SimKernel::Reference, s, s).to_bits()
            );
            assert_eq!(levenshtein_k(SimKernel::Fast, s, s), 0);
        }
    }
}

//! Levenshtein and Damerau-Levenshtein (optimal string alignment) edit
//! distances plus their normalised similarities.

use crate::clamp01;

/// Levenshtein edit distance (insertions, deletions, substitutions) between
/// two strings, computed over chars with the classic two-row dynamic
/// programme in `O(|a|·|b|)` time and `O(min(|a|,|b|))` space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    // Keep the inner dimension the shorter string to minimise the rows.
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr = vec![0usize; short.len() + 1];
    for (i, &cl) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &cs) in short.iter().enumerate() {
            let cost = usize::from(cl != cs);
            curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// Damerau-Levenshtein distance in its *optimal string alignment* variant:
/// like Levenshtein but adjacent transpositions count as one edit (each
/// substring may be edited at most once).
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Full DP matrix; attribute values in ER are short strings, so the
    // quadratic memory is negligible and the code stays obvious.
    let cols = b.len() + 1;
    let mut d = vec![0usize; (a.len() + 1) * cols];
    for (j, cell) in d[..cols].iter_mut().enumerate() {
        *cell = j;
    }
    for i in 1..=a.len() {
        d[i * cols] = i;
        for j in 1..=b.len() {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (d[(i - 1) * cols + j] + 1)
                .min(d[i * cols + j - 1] + 1)
                .min(d[(i - 1) * cols + j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(d[(i - 2) * cols + j - 2] + 1);
            }
            d[i * cols + j] = best;
        }
    }
    d[a.len() * cols + b.len()]
}

/// Levenshtein distance normalised into a similarity:
/// `1 − d / max(|a|, |b|)`, with `1.0` for two empty strings.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let longest = la.max(lb);
    if longest == 0 {
        return 1.0;
    }
    clamp01(1.0 - levenshtein(a, b) as f64 / longest as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("gumbo", "gambol"), 2);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
    }

    #[test]
    fn damerau_counts_transpositions_once() {
        assert_eq!(levenshtein("ca", "ac"), 2);
        assert_eq!(damerau_levenshtein("ca", "ac"), 1);
        assert_eq!(damerau_levenshtein("smtih", "smith"), 1);
        assert_eq!(damerau_levenshtein("kitten", "sitting"), 3);
        assert_eq!(damerau_levenshtein("", ""), 0);
        assert_eq!(damerau_levenshtein("abc", ""), 3);
    }

    #[test]
    fn osa_variant_property() {
        // The OSA variant famously gives 3 here (true Damerau gives 2).
        assert_eq!(damerau_levenshtein("ca", "abc"), 3);
    }

    #[test]
    fn similarity_normalisation() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("kitten", "sitting");
        assert!((s - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        for (a, b) in [("kitten", "sitting"), ("abc", ""), ("martha", "marhta")] {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
            assert_eq!(damerau_levenshtein(a, b), damerau_levenshtein(b, a));
        }
    }
}

//! Similarity comparators for the record-pair comparison step of an ER
//! pipeline.
//!
//! Every function in this crate maps a pair of values to a similarity score
//! in `[0, 1]`, where `1` means identical and `0` means maximally different.
//! The paper's experimental setup uses Jaro-Winkler for names and Jaccard
//! for other textual strings, plus bounded numeric comparators for years;
//! this crate additionally provides the comparators commonly found in ER
//! toolkits (Levenshtein, Dice, overlap, longest common subsequence,
//! Monge-Elkan, Soundex) so that feature spaces can be configured freely.
//!
//! All string functions operate on `char`s, so multi-byte UTF-8 is handled
//! correctly.
//!
//! Two kernel engines compute every score (see [`SimKernel`] and the
//! `TRANSER_SIM_KERNEL` knob): `fast` — allocation-free bit-parallel /
//! merge-based kernels, the default — and `reference` — the original
//! implementations, pinned as the bit-identity baseline the fast engine is
//! proptested against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod jaccard;
mod jaro;
mod kernel;
mod lcs;
mod levenshtein;
mod monge_elkan;
mod numeric;
mod prepared;
mod qgram;
mod soundex;

pub use config::{similarity_for, Measure};
pub use jaccard::{
    dice_qgram, dice_sets, dice_sorted, dice_tokens, jaccard_qgram, jaccard_sets, jaccard_sorted,
    jaccard_tokens, overlap_sets, overlap_sorted, overlap_tokens, qgram_set, token_set,
};
pub use jaro::{jaro, jaro_winkler, jaro_winkler_with};
pub use kernel::SimKernel;
pub use lcs::{lcs_len, lcs_similarity};
pub use levenshtein::{damerau_levenshtein, levenshtein, levenshtein_similarity};
pub use monge_elkan::{monge_elkan, monge_elkan_tokens};
pub use numeric::{numeric_similarity, year_similarity};
pub use prepared::PreparedText;
pub use qgram::{qgram_multiset, qgrams, tokens};
pub use soundex::{soundex, soundex_similarity};

/// Exact string equality as a similarity: 1.0 when equal, else 0.0.
#[inline]
pub fn exact(a: &str, b: &str) -> f64 {
    if a == b {
        1.0
    } else {
        0.0
    }
}

/// Clamp a score into `[0, 1]`, guarding against floating-point drift.
#[inline]
pub(crate) fn clamp01(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_is_binary() {
        assert_eq!(exact("ab", "ab"), 1.0);
        assert_eq!(exact("ab", "ba"), 0.0);
        assert_eq!(exact("", ""), 1.0);
    }
}

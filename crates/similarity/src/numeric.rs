//! Bounded numeric comparators for numbers and calendar years.

use crate::clamp01;

/// Linear numeric similarity: `1 − |a − b| / max_diff`, floored at 0.
///
/// `max_diff` is the absolute difference at (and beyond) which two values
/// are considered completely dissimilar; it must be positive.
pub fn numeric_similarity(a: f64, b: f64, max_diff: f64) -> f64 {
    assert!(max_diff > 0.0, "max_diff must be positive");
    if !a.is_finite() || !b.is_finite() {
        return 0.0;
    }
    clamp01(1.0 - (a - b).abs() / max_diff)
}

/// Year similarity with the tolerance the paper's feature vectors exhibit:
/// identical years score 1.0, one year apart 0.9, and the score decays
/// linearly to 0 at a 10-year difference.
pub fn year_similarity(a: f64, b: f64) -> f64 {
    numeric_similarity(a, b, 10.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_decay() {
        assert_eq!(numeric_similarity(5.0, 5.0, 10.0), 1.0);
        assert!((numeric_similarity(5.0, 10.0, 10.0) - 0.5).abs() < 1e-12);
        assert_eq!(numeric_similarity(0.0, 20.0, 10.0), 0.0);
        assert_eq!(numeric_similarity(0.0, 200.0, 10.0), 0.0);
    }

    #[test]
    fn year_tolerance_matches_paper_example() {
        // The Musicbrainz example vector has 0.9 for years one apart.
        assert!((year_similarity(1970.0, 1971.0) - 0.9).abs() < 1e-12);
        assert_eq!(year_similarity(1996.0, 1996.0), 1.0);
        assert_eq!(year_similarity(1900.0, 2000.0), 0.0);
    }

    #[test]
    fn symmetric() {
        assert_eq!(numeric_similarity(3.0, 8.0, 10.0), numeric_similarity(8.0, 3.0, 10.0));
    }

    #[test]
    fn non_finite_scores_zero() {
        assert_eq!(numeric_similarity(f64::NAN, 1.0, 10.0), 0.0);
        assert_eq!(numeric_similarity(1.0, f64::INFINITY, 10.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "max_diff")]
    fn zero_max_diff_panics() {
        numeric_similarity(1.0, 2.0, 0.0);
    }
}

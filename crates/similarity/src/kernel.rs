//! Similarity kernel engine selection and the allocation-free fast paths.
//!
//! The per-pair comparison stage dominates pipeline wall clock (each
//! candidate pair pays ~14 measures), so every allocation inside a kernel
//! is paid `pairs × measures` times. This module provides:
//!
//! * [`SimKernel`] — the engine switch (`TRANSER_SIM_KERNEL`), following
//!   the repo's pinned-reference pattern (`TreeEngine`, `IndexKind`):
//!   the original kernels stay byte-for-byte as the `reference` engine
//!   and the `fast` engine is proptested bit-identical against them;
//! * thread-local [`Scratch`] buffers so char-level kernels (Levenshtein,
//!   Jaro, Jaro-Winkler, LCS) run without a single heap allocation after
//!   warm-up;
//! * the Myers bit-parallel Levenshtein core (one `u64` block, strings up
//!   to 64 chars) with Hyyrö's multi-block formulation as the wide
//!   fallback (`⌈m/64⌉` words per text char instead of an `O(m)` scalar
//!   DP row), each with an ASCII byte-slice path and a unicode char path.
//!
//! Trace counters (all under the fast engine only):
//! `similarity.kernel.ascii` / `similarity.kernel.unicode` classify
//! char-level kernel invocations by input path;
//! `similarity.levenshtein.calls` counts Levenshtein distance kernel runs
//! and is partitioned exactly by `similarity.kernel.bitparallel`
//! (single-block) + `similarity.kernel.fallback` (multi-block wide path),
//! checked by `trace_report --check`.

use std::cell::RefCell;
use std::sync::OnceLock;

/// Which similarity kernel engine to use. Both produce bit-identical
/// scores; the choice affects comparison wall time only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimKernel {
    /// Allocation-free kernels: Myers bit-parallel Levenshtein, scratch
    /// buffers, merge-based set similarities over interned/packed
    /// profiles. The default.
    Fast,
    /// The original per-call-allocating kernels, pinned as the
    /// reference the fast engine is tested against.
    Reference,
}

impl SimKernel {
    /// Parse a recognised `TRANSER_SIM_KERNEL` value; `None` otherwise.
    fn parse_known(s: &str) -> Option<SimKernel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "reference" | "ref" => Some(SimKernel::Reference),
            "fast" | "" => Some(SimKernel::Fast),
            _ => None,
        }
    }

    /// Parse a `TRANSER_SIM_KERNEL`-style value. Unrecognised or empty
    /// values fall back to [`SimKernel::Fast`].
    pub fn parse(s: &str) -> SimKernel {
        SimKernel::parse_known(s).unwrap_or(SimKernel::Fast)
    }

    /// The process-wide engine from the `TRANSER_SIM_KERNEL` environment
    /// variable, read once (mirroring `TRANSER_TREE_ENGINE`); unset means
    /// [`SimKernel::Fast`], unrecognised warns through the trace layer
    /// and falls back to [`SimKernel::Fast`].
    pub fn from_env() -> SimKernel {
        static KIND: OnceLock<SimKernel> = OnceLock::new();
        *KIND.get_or_init(|| {
            transer_common::env::parsed_with(
                transer_common::env::SIM_KERNEL,
                SimKernel::parse_known,
                "one of fast/reference",
                "fast",
            )
            .unwrap_or(SimKernel::Fast)
        })
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            SimKernel::Fast => "fast",
            SimKernel::Reference => "reference",
        }
    }
}

/// Reusable per-thread buffers for the fast char-level kernels. Every
/// kernel entry point borrows the scratch exactly once (no kernel calls
/// another kernel while holding it), so the `RefCell` can never observe a
/// nested borrow.
pub(crate) struct Scratch {
    /// Two DP rows (Levenshtein / LCS fallback).
    row_prev: Vec<usize>,
    row_curr: Vec<usize>,
    /// Jaro: which positions of `b` are already matched.
    used: Vec<bool>,
    /// Jaro: indices into `a` of the matched characters, in `a` order.
    amatch: Vec<u32>,
    /// Decoded char buffers for the unicode paths.
    chars_a: Vec<char>,
    chars_b: Vec<char>,
    /// Myers pattern bitmasks, ASCII path. Kept all-zero between calls
    /// (each call clears exactly the entries it set).
    peq_ascii: [u64; 128],
    /// Myers pattern bitmasks, unicode path: sorted `(char, mask)`.
    peq_unicode: Vec<(char, u64)>,
    /// Lower-cased padded char stream for q-gram packing.
    pub(crate) lower: Vec<char>,
    /// Packed-gram staging buffer for q-gram packing.
    pub(crate) grams: Vec<u64>,
    /// Multi-block Myers: `(scalar, pattern index)` pairs for mask
    /// construction, the sorted unique scalars, their per-block masks
    /// (row-major, `blocks` words per scalar), the vertical delta
    /// vectors, and an all-zero row for scalars absent from the pattern.
    mb_keys: Vec<(u32, u32)>,
    mb_chars: Vec<u32>,
    mb_masks: Vec<u64>,
    mb_pv: Vec<u64>,
    mb_mv: Vec<u64>,
    mb_zeros: Vec<u64>,
}

impl Scratch {
    fn new() -> Self {
        Scratch {
            row_prev: Vec::new(),
            row_curr: Vec::new(),
            used: Vec::new(),
            amatch: Vec::new(),
            chars_a: Vec::new(),
            chars_b: Vec::new(),
            peq_ascii: [0u64; 128],
            peq_unicode: Vec::new(),
            lower: Vec::new(),
            grams: Vec::new(),
            mb_keys: Vec::new(),
            mb_chars: Vec::new(),
            mb_masks: Vec::new(),
            mb_pv: Vec::new(),
            mb_mv: Vec::new(),
            mb_zeros: Vec::new(),
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Run `f` with this thread's scratch buffers.
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

const C_ASCII: &str = "similarity.kernel.ascii";
const C_UNICODE: &str = "similarity.kernel.unicode";
const C_BITPARALLEL: &str = "similarity.kernel.bitparallel";
const C_FALLBACK: &str = "similarity.kernel.fallback";
const C_LEV_CALLS: &str = "similarity.levenshtein.calls";

// ---------------------------------------------------------------------------
// Levenshtein
// ---------------------------------------------------------------------------

/// Fast Levenshtein distance plus both char lengths in one traversal.
/// Callers must have handled `a == b` (the kernels assume a real edit
/// distance computation is needed; equality short-circuits happen one
/// level up where the bit-identity of the shortcut is provable).
pub(crate) fn lev_distance_with_lens(a: &str, b: &str) -> (usize, usize, usize) {
    if a.is_ascii() && b.is_ascii() {
        transer_trace::counter(C_ASCII, 1);
        let (la, lb) = (a.len(), b.len());
        let (s, l) =
            if la <= lb { (a.as_bytes(), b.as_bytes()) } else { (b.as_bytes(), a.as_bytes()) };
        let d = if s.is_empty() {
            l.len()
        } else {
            transer_trace::counter(C_LEV_CALLS, 1);
            if s.len() <= 64 {
                transer_trace::counter(C_BITPARALLEL, 1);
                with_scratch(|sc| myers_ascii(s, l, &mut sc.peq_ascii))
            } else {
                transer_trace::counter(C_FALLBACK, 1);
                with_scratch(|sc| {
                    myers_wide(
                        s.len(),
                        s.iter().map(|&c| u32::from(c)),
                        l.iter().map(|&c| u32::from(c)),
                        sc,
                    )
                })
            }
        };
        (d, la, lb)
    } else {
        transer_trace::counter(C_UNICODE, 1);
        let la = a.chars().count();
        let lb = b.chars().count();
        let (s, sl, l) = if la <= lb { (a, la, b) } else { (b, lb, a) };
        let d = if sl == 0 {
            la.max(lb)
        } else {
            transer_trace::counter(C_LEV_CALLS, 1);
            if sl <= 64 {
                transer_trace::counter(C_BITPARALLEL, 1);
                with_scratch(|sc| myers_unicode(s, sl, l, &mut sc.peq_unicode))
            } else {
                transer_trace::counter(C_FALLBACK, 1);
                with_scratch(|sc| {
                    myers_wide(sl, s.chars().map(u32::from), l.chars().map(u32::from), sc)
                })
            }
        };
        (d, la, lb)
    }
}

/// Myers bit-parallel Levenshtein (Hyyrö's formulation), one `u64` block.
/// `pattern` is the shorter string, `1..=64` bytes, all ASCII. `peq` is
/// an all-zero 128-entry mask table; it is restored to all-zero on exit.
fn myers_ascii(pattern: &[u8], text: &[u8], peq: &mut [u64; 128]) -> usize {
    debug_assert!(!pattern.is_empty() && pattern.len() <= 64);
    for (i, &c) in pattern.iter().enumerate() {
        peq[c as usize] |= 1u64 << i;
    }
    let score = myers_core(pattern.len(), text.iter().map(|&c| peq[c as usize]));
    for &c in pattern {
        peq[c as usize] = 0;
    }
    score
}

/// Myers over chars: pattern masks as a sorted `(char, mask)` table with
/// binary-search lookup (patterns are at most 64 distinct chars).
fn myers_unicode(pattern: &str, m: usize, text: &str, peq: &mut Vec<(char, u64)>) -> usize {
    debug_assert!((1..=64).contains(&m));
    peq.clear();
    for (i, c) in pattern.chars().enumerate() {
        peq.push((c, 1u64 << i));
    }
    peq.sort_unstable_by_key(|&(c, _)| c);
    // Coalesce duplicate chars by OR-ing their masks.
    let mut w = 0;
    for r in 1..peq.len() {
        if peq[r].0 == peq[w].0 {
            peq[w].1 |= peq[r].1;
        } else {
            w += 1;
            peq[w] = peq[r];
        }
    }
    peq.truncate(w + 1);
    let table: &[(char, u64)] = peq;
    myers_core(
        m,
        text.chars().map(|c| match table.binary_search_by_key(&c, |&(p, _)| p) {
            Ok(k) => table[k].1,
            Err(_) => 0,
        }),
    )
}

/// The Myers column-update recurrence over a stream of per-text-char
/// pattern match masks.
fn myers_core(m: usize, eqs: impl Iterator<Item = u64>) -> usize {
    let mut pv = !0u64;
    let mut mv = 0u64;
    let mut score = m;
    let last = 1u64 << (m - 1);
    for eq in eqs {
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let mut ph = mv | !(xh | pv);
        let mut mh = pv & xh;
        if ph & last != 0 {
            score += 1;
        } else if mh & last != 0 {
            score -= 1;
        }
        ph = (ph << 1) | 1;
        mh <<= 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
    }
    score
}

/// Multi-block Myers (Hyyrö's block formulation) for patterns past one
/// `u64` block: `⌈m/64⌉` word updates per text char instead of the `O(m)`
/// scalar DP row. Operates on unicode scalar values so the ASCII and
/// unicode paths share it. The horizontal delta carries between blocks
/// as `(ph_in, mh_in)` bits; the score is tracked at the pattern's last
/// bit in the last block, exactly as in the single-block core. Bits of
/// the last block above the pattern end stay inert: their `eq` masks are
/// never set and in-block carries only propagate upward.
fn myers_wide(
    m: usize,
    pattern: impl Iterator<Item = u32>,
    text: impl Iterator<Item = u32>,
    sc: &mut Scratch,
) -> usize {
    debug_assert!(m > 64);
    let blocks = m.div_ceil(64);
    let Scratch { mb_keys, mb_chars, mb_masks, mb_pv, mb_mv, mb_zeros, .. } = sc;
    mb_keys.clear();
    for (i, c) in pattern.enumerate() {
        mb_keys.push((c, i as u32));
    }
    debug_assert_eq!(mb_keys.len(), m);
    mb_keys.sort_unstable();
    mb_chars.clear();
    mb_masks.clear();
    for &(c, i) in mb_keys.iter() {
        if mb_chars.last() != Some(&c) {
            mb_chars.push(c);
            mb_masks.resize(mb_masks.len() + blocks, 0);
        }
        let base = mb_masks.len() - blocks;
        mb_masks[base + i as usize / 64] |= 1u64 << (i % 64);
    }
    mb_pv.clear();
    mb_pv.resize(blocks, !0u64);
    mb_mv.clear();
    mb_mv.resize(blocks, 0);
    mb_zeros.clear();
    mb_zeros.resize(blocks, 0);
    let mut score = m;
    let last = 1u64 << ((m - 1) % 64);
    for c in text {
        let row: &[u64] = match mb_chars.binary_search(&c) {
            Ok(k) => &mb_masks[k * blocks..(k + 1) * blocks],
            Err(_) => mb_zeros,
        };
        let mut ph_in = 1u64;
        let mut mh_in = 0u64;
        for (b, &eq_raw) in row.iter().enumerate() {
            let (pv, mv) = (mb_pv[b], mb_mv[b]);
            let eq = eq_raw | mh_in;
            let xv = eq_raw | mv;
            let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
            let mut ph = mv | !(xh | pv);
            let mut mh = pv & xh;
            if b == blocks - 1 {
                if ph & last != 0 {
                    score += 1;
                } else if mh & last != 0 {
                    score -= 1;
                }
            }
            let (ph_out, mh_out) = (ph >> 63, mh >> 63);
            ph = (ph << 1) | ph_in;
            mh = (mh << 1) | mh_in;
            mb_pv[b] = mh | !(xv | ph);
            mb_mv[b] = ph & xv;
            ph_in = ph_out;
            mh_in = mh_out;
        }
    }
    score
}

/// Two-row Levenshtein DP: `short` indexable, `long` streamed. The exact
/// recurrence of the reference implementation; kept as the oracle the
/// bit-parallel kernels are unit-tested against.
#[cfg(test)]
fn lev_rows_iter<T: Copy + PartialEq>(
    short: &[T],
    long: impl Iterator<Item = T>,
    prev: &mut Vec<usize>,
    curr: &mut Vec<usize>,
) -> usize {
    prev.clear();
    prev.extend(0..=short.len());
    curr.clear();
    curr.resize(short.len() + 1, 0);
    for (i, cl) in long.enumerate() {
        curr[0] = i + 1;
        for (j, &cs) in short.iter().enumerate() {
            let cost = usize::from(cl != cs);
            curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(prev, curr);
    }
    prev[short.len()]
}

// ---------------------------------------------------------------------------
// Jaro
// ---------------------------------------------------------------------------

/// Fast Jaro similarity. Equal inputs short-circuit to exactly `1.0`
/// (provably the reference result: `m = |a|`, `t = 0` gives
/// `(1 + 1 + 1) / 3 = 1.0` exactly; two empty strings are defined as 1).
pub(crate) fn jaro_fast(a: &str, b: &str) -> f64 {
    if a == b {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    if a.is_ascii() && b.is_ascii() {
        transer_trace::counter(C_ASCII, 1);
        with_scratch(|sc| jaro_core(a.as_bytes(), b.as_bytes(), &mut sc.used, &mut sc.amatch))
    } else {
        transer_trace::counter(C_UNICODE, 1);
        with_scratch(|sc| {
            sc.chars_a.clear();
            sc.chars_a.extend(a.chars());
            sc.chars_b.clear();
            sc.chars_b.extend(b.chars());
            let (ca, cb): (&[char], &[char]) = (&sc.chars_a, &sc.chars_b);
            jaro_core(ca, cb, &mut sc.used, &mut sc.amatch)
        })
    }
}

/// The Jaro match/transposition scan over indexable symbol slices — the
/// same greedy window matching as the reference, with the matched-symbol
/// lists replaced by an index list and a streaming transposition count.
fn jaro_core<T: Copy + PartialEq>(
    a: &[T],
    b: &[T],
    used: &mut Vec<bool>,
    amatch: &mut Vec<u32>,
) -> f64 {
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    used.clear();
    used.resize(b.len(), false);
    amatch.clear();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for (j, u) in used.iter_mut().enumerate().take(hi).skip(lo) {
            if !*u && b[j] == ca {
                *u = true;
                amatch.push(i as u32);
                break;
            }
        }
    }
    let m = amatch.len();
    if m == 0 {
        return 0.0;
    }
    // Matched chars of `b` in `b` order, paired against matched chars of
    // `a` in `a` order — exactly the reference's zipped comparison.
    let mut transpositions = 0usize;
    let mut k = 0usize;
    for (j, &u) in used.iter().enumerate() {
        if u {
            if b[j] != a[amatch[k] as usize] {
                transpositions += 1;
            }
            k += 1;
        }
    }
    let transpositions = transpositions / 2;
    let m = m as f64;
    let t = transpositions as f64;
    crate::clamp01((m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0)
}

/// Fast Jaro-Winkler with configurable prefix parameters. The common
/// prefix is counted on streamed chars (no collect); equal inputs
/// short-circuit to exactly `1.0` (`jw = 1 + ℓ·p·(1 − 1) = 1` exactly).
pub(crate) fn jaro_winkler_fast(a: &str, b: &str, prefix_scale: f64, max_prefix: usize) -> f64 {
    if a == b {
        return 1.0;
    }
    let j = jaro_fast(a, b);
    let prefix = a.chars().zip(b.chars()).take(max_prefix).take_while(|(x, y)| x == y).count();
    crate::clamp01(j + prefix as f64 * prefix_scale * (1.0 - j))
}

// ---------------------------------------------------------------------------
// LCS
// ---------------------------------------------------------------------------

/// Fast LCS length plus both char lengths in one traversal. Callers must
/// have handled `a == b`.
pub(crate) fn lcs_len_with_lens(a: &str, b: &str) -> (usize, usize, usize) {
    if a.is_ascii() && b.is_ascii() {
        transer_trace::counter(C_ASCII, 1);
        let (la, lb) = (a.len(), b.len());
        if la == 0 || lb == 0 {
            return (0, la, lb);
        }
        let (s, l) =
            if la <= lb { (a.as_bytes(), b.as_bytes()) } else { (b.as_bytes(), a.as_bytes()) };
        let len =
            with_scratch(|sc| lcs_rows(s, l.iter().copied(), &mut sc.row_prev, &mut sc.row_curr));
        (len, la, lb)
    } else {
        transer_trace::counter(C_UNICODE, 1);
        let la = a.chars().count();
        let lb = b.chars().count();
        if la == 0 || lb == 0 {
            return (0, la, lb);
        }
        let (s, l) = if la <= lb { (a, b) } else { (b, a) };
        let len = with_scratch(|sc| {
            sc.chars_a.clear();
            sc.chars_a.extend(s.chars());
            let short: &[char] = &sc.chars_a;
            lcs_rows(short, l.chars(), &mut sc.row_prev, &mut sc.row_curr)
        });
        (len, la, lb)
    }
}

/// Two-row LCS DP: `short` indexable, `long` streamed; rows from scratch.
fn lcs_rows<T: Copy + PartialEq>(
    short: &[T],
    long: impl Iterator<Item = T>,
    prev: &mut Vec<usize>,
    curr: &mut Vec<usize>,
) -> usize {
    prev.clear();
    prev.resize(short.len() + 1, 0);
    curr.clear();
    curr.resize(short.len() + 1, 0);
    for cl in long {
        for (j, &cs) in short.iter().enumerate() {
            curr[j + 1] = if cl == cs { prev[j] + 1 } else { prev[j + 1].max(curr[j]) };
        }
        std::mem::swap(prev, curr);
    }
    prev[short.len()]
}

// ---------------------------------------------------------------------------
// Packed q-grams
// ---------------------------------------------------------------------------

/// Largest `q` whose padded char q-grams pack injectively into a `u64`
/// (21 bits per `char` scalar value, 3 × 21 = 63 bits).
pub(crate) const PACK_MAX_Q: usize = 3;

/// The distinct padded q-grams of `s` packed into sorted `u64`s, for
/// `q ≤ PACK_MAX_Q`. Packing is injective on fixed-length char windows
/// (each char scalar value occupies its own 21-bit field), so the packed
/// set has exactly the cardinality and intersection structure of the
/// reference `String` gram set.
pub(crate) fn packed_qgram_profile(s: &str, q: usize) -> Vec<u64> {
    debug_assert!(q <= PACK_MAX_Q);
    if s.is_empty() || q == 0 {
        return Vec::new();
    }
    with_scratch(|sc| {
        let pad = q - 1;
        sc.lower.clear();
        sc.lower.extend(std::iter::repeat_n('#', pad));
        sc.lower.extend(s.chars().flat_map(|c| c.to_lowercase()));
        sc.lower.extend(std::iter::repeat_n('#', pad));
        if sc.lower.len() < q {
            return Vec::new();
        }
        sc.grams.clear();
        for window in sc.lower.windows(q) {
            let mut packed = 0u64;
            for &c in window {
                packed = (packed << 21) | u64::from(u32::from(c));
            }
            sc.grams.push(packed);
        }
        sc.grams.sort_unstable();
        sc.grams.dedup();
        sc.grams.clone()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_names() {
        assert_eq!(SimKernel::parse("fast"), SimKernel::Fast);
        assert_eq!(SimKernel::parse("FAST"), SimKernel::Fast);
        assert_eq!(SimKernel::parse("reference"), SimKernel::Reference);
        assert_eq!(SimKernel::parse("ref"), SimKernel::Reference);
        assert_eq!(SimKernel::parse("nonsense"), SimKernel::Fast);
        assert_eq!(SimKernel::parse(""), SimKernel::Fast);
        assert_eq!(SimKernel::Fast.name(), "fast");
        assert_eq!(SimKernel::Reference.name(), "reference");
    }

    #[test]
    fn myers_matches_dp_on_knowns() {
        for (a, b, want) in [
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("gumbo", "gambol", 2),
            ("abc", "abd", 1),
            ("a", "b", 1),
            ("x", "x", 0),
        ] {
            let (d, _, _) = lev_distance_with_lens(a, b);
            assert_eq!(d, want, "{a} vs {b}");
        }
    }

    #[test]
    fn myers_handles_64_char_boundary() {
        let a64: String = std::iter::repeat_n('a', 64).collect();
        let b64: String = std::iter::repeat_n('b', 64).collect();
        assert_eq!(lev_distance_with_lens(&a64, &b64).0, 64);
        let a65: String = std::iter::repeat_n('a', 65).collect();
        assert_eq!(lev_distance_with_lens(&a65, &b64).0, 65);
        assert_eq!(lev_distance_with_lens(&a64, &a65).0, 1);
    }

    /// Oracle distance via the pinned two-row DP recurrence.
    fn dp_distance(a: &str, b: &str) -> usize {
        let ac: Vec<char> = a.chars().collect();
        let bc: Vec<char> = b.chars().collect();
        let (s, l): (&[char], &[char]) = if ac.len() <= bc.len() { (&ac, &bc) } else { (&bc, &ac) };
        lev_rows_iter(s, l.iter().copied(), &mut Vec::new(), &mut Vec::new())
    }

    #[test]
    fn wide_kernel_matches_dp_across_block_boundaries() {
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let alphabet = ['a', 'b', 'c', 'd', 'е', 'ж', '#'];
        let mut rand_string = |len: usize| -> String {
            (0..len).map(|_| alphabet[(next() % alphabet.len() as u64) as usize]).collect()
        };
        // Lengths straddling the 64/128/192 block edges; every pair needs
        // the wide kernel (shorter side > 64) or exercises mixed dispatch.
        for (la, lb) in [(65, 65), (65, 130), (100, 100), (127, 129), (128, 128), (193, 70)] {
            for _ in 0..4 {
                let a = rand_string(la);
                let b = rand_string(lb);
                assert_eq!(
                    lev_distance_with_lens(&a, &b).0,
                    dp_distance(&a, &b),
                    "lens ({la}, {lb})"
                );
            }
        }
    }

    #[test]
    fn wide_kernel_exact_on_adversarial_shapes() {
        let a65 = "a".repeat(65);
        let b65 = "b".repeat(65);
        assert_eq!(lev_distance_with_lens(&a65, &b65).0, 65);
        // One substitution exactly at the block boundary.
        let mut x = "c".repeat(130);
        let y = x.clone();
        x.replace_range(64..65, "z");
        assert_eq!(lev_distance_with_lens(&x, &y).0, 1);
        // Prefix insertion shifting every block.
        let base = "ab".repeat(40);
        let shifted = format!("x{base}");
        assert_eq!(lev_distance_with_lens(&base, &shifted).0, 1);
        // Non-ASCII wide path.
        let cyr = "ш".repeat(70);
        let mut cyr2 = cyr.clone();
        cyr2.push('щ');
        assert_eq!(lev_distance_with_lens(&cyr, &cyr2).0, 1);
    }

    #[test]
    fn peq_ascii_is_cleared_between_calls() {
        // Two different patterns back to back on the same thread: stale
        // masks from the first call would corrupt the second.
        assert_eq!(lev_distance_with_lens("abcd", "abcd_x").0, 2);
        assert_eq!(lev_distance_with_lens("dcba", "abcd").0, 4);
        assert_eq!(lev_distance_with_lens("zzzz", "abcd").0, 4);
    }

    #[test]
    fn unicode_myers_with_duplicate_pattern_chars() {
        assert_eq!(lev_distance_with_lens("наука", "наука о").0, 2);
        assert_eq!(lev_distance_with_lens("ааа", "ааб").0, 1);
        assert_eq!(lev_distance_with_lens("mañana", "manana").0, 1);
    }

    #[test]
    fn packed_grams_match_reference_cardinalities() {
        for s in ["", "a", "ab", "abc", "Deep Entity", "ааа", "ñandú"] {
            for q in [1, 2, 3] {
                let packed = packed_qgram_profile(s, q);
                let reference = crate::qgram_set(s, q);
                assert_eq!(packed.len(), reference.len(), "{s:?} q={q}");
                assert!(packed.windows(2).all(|w| w[0] < w[1]), "sorted unique");
            }
        }
    }

    #[test]
    fn packed_grams_distinguish_distinct_windows() {
        // Injectivity smoke: permuted windows must not collide.
        let ab = packed_qgram_profile("ab", 2);
        let ba = packed_qgram_profile("ba", 2);
        assert_ne!(ab, ba);
    }
}

//! Monge-Elkan hybrid similarity: token-level averaging over a
//! character-level inner comparator.

use crate::clamp01;
use crate::qgram::tokens;

/// Monge-Elkan similarity: for every token of `a`, take the best inner
/// similarity against any token of `b`, and average.
///
/// Note the measure is asymmetric by definition; symmetrise with
/// `0.5 * (me(a,b) + me(b,a))` if required. The inner comparator is usually
/// [`crate::jaro_winkler`].
pub fn monge_elkan<F>(a: &str, b: &str, inner: F) -> f64
where
    F: Fn(&str, &str) -> f64,
{
    monge_elkan_tokens(&tokens(a), &tokens(b), inner)
}

/// [`monge_elkan`] over already-tokenised inputs — exposed so callers can
/// tokenise each value once and reuse the token lists across many pairs.
pub fn monge_elkan_tokens<F>(ta: &[String], tb: &[String], inner: F) -> f64
where
    F: Fn(&str, &str) -> f64,
{
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let total: f64 = ta.iter().map(|x| tb.iter().map(|y| inner(x, y)).fold(0.0f64, f64::max)).sum();
    clamp01(total / ta.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaro_winkler;

    #[test]
    fn identical_token_bags() {
        assert_eq!(monge_elkan("peter christen", "peter christen", jaro_winkler), 1.0);
        // Token order must not matter for a perfect score.
        assert_eq!(monge_elkan("christen peter", "peter christen", jaro_winkler), 1.0);
    }

    #[test]
    fn partial_overlap() {
        let s = monge_elkan("peter a christen", "peter christen", jaro_winkler);
        assert!(s > 0.6 && s < 1.0, "{s}");
    }

    #[test]
    fn empty_conventions() {
        assert_eq!(monge_elkan("", "", jaro_winkler), 1.0);
        assert_eq!(monge_elkan("a", "", jaro_winkler), 0.0);
        assert_eq!(monge_elkan("", "a", jaro_winkler), 0.0);
    }

    #[test]
    fn asymmetry_is_expected() {
        // Every token of the short string is contained in the long one, but
        // not vice versa, so me(short, long) >= me(long, short).
        let ab = monge_elkan("smith", "smith jones brown", jaro_winkler);
        let ba = monge_elkan("smith jones brown", "smith", jaro_winkler);
        assert!(ab >= ba);
        assert_eq!(ab, 1.0);
    }

    #[test]
    fn robust_to_typos_in_tokens() {
        let s = monge_elkan("jon smyth", "john smith", jaro_winkler);
        assert!(s > 0.8, "{s}");
    }
}

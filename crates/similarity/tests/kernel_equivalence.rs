//! The bit-identity contract between the two similarity kernel engines:
//! for any pair of strings — ASCII or not, short or past the 64-char
//! bit-parallel block, with combining marks, empty or all-whitespace —
//! every [`Measure`] must score exactly the same under `fast` and
//! `reference`, through the direct, prepared and interned paths alike.

use proptest::prelude::*;
use transer_common::StrInterner;
use transer_similarity::{Measure, SimKernel};

const ALL: [Measure; 15] = [
    Measure::Jaro,
    Measure::JaroWinkler,
    Measure::Levenshtein,
    Measure::TokenJaccard,
    Measure::QgramJaccard(2),
    Measure::QgramJaccard(4),
    Measure::TokenDice,
    Measure::QgramDice(3),
    Measure::TokenOverlap,
    Measure::Lcs,
    Measure::MongeElkanJw,
    Measure::Soundex,
    Measure::Exact,
    Measure::Numeric(5.0),
    Measure::Year,
];

/// Deterministic xorshift (proptest drives only the seed).
fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

/// Character palettes chosen to hit every kernel path: the ASCII byte
/// fast path, the unicode char path, combining marks (so chars ≠
/// graphemes), digits (numeric parsing), and heavy duplicates (Myers
/// mask coalescing, q-gram multiplicity collapse).
const PALETTES: [&[&str]; 6] = [
    // Plain ASCII words.
    &["a", "b", "c", "d", "e", " ", "t", "n"],
    // ASCII with digits and punctuation the tokeniser strips.
    &["1", "9", "0", ".", " ", "-", "'", ",", "x"],
    // Cyrillic (unicode path, multi-byte chars).
    &["н", "а", "у", "к", " ", "д"],
    // Combining marks and precomposed characters.
    &["a\u{0301}", "e\u{0308}", "é", "o", " ", "n\u{0303}"],
    // Whitespace-heavy.
    &[" ", "\t", "a", " "],
    // Heavy duplicates for transposition / coalescing paths.
    &["a", "a", "a", "b", " "],
];

/// Build a string of `pieces` palette draws; `long` appends enough of the
/// first palette entry to push the char length past the 64-char Myers
/// block, forcing the multi-block wide fallback.
fn gen_string(kind: usize, pieces: usize, long: bool, seed: u64) -> String {
    let palette = PALETTES[kind % PALETTES.len()];
    let mut next = xorshift(seed);
    let mut s = String::new();
    for _ in 0..pieces {
        s.push_str(palette[(next() % palette.len() as u64) as usize]);
    }
    if long {
        for _ in 0..70 {
            s.push_str(palette[0]);
        }
    }
    s
}

fn assert_all_measures_agree(a: &str, b: &str) {
    let mut interner = StrInterner::new();
    for m in ALL {
        let reference = m.text_with(SimKernel::Reference, a, b);
        let fast = m.text_with(SimKernel::Fast, a, b);
        assert_eq!(
            fast.to_bits(),
            reference.to_bits(),
            "{m:?} text on ({a:?}, {b:?}): fast {fast} != reference {reference}"
        );
        for kernel in [SimKernel::Fast, SimKernel::Reference] {
            let pa = m.prepare_with(kernel, a);
            let pb = m.prepare_with(kernel, b);
            let prepared = m.prepared_with(kernel, &pa, &pb);
            assert_eq!(
                prepared.to_bits(),
                reference.to_bits(),
                "{m:?} prepared/{} on ({a:?}, {b:?})",
                kernel.name()
            );
        }
        let ia = m.prepare_interned_with(SimKernel::Fast, a, &mut interner);
        let ib = m.prepare_interned_with(SimKernel::Fast, b, &mut interner);
        let interned = m.prepared_with(SimKernel::Fast, &ia, &ib);
        assert_eq!(interned.to_bits(), reference.to_bits(), "{m:?} interned on ({a:?}, {b:?})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fast_engine_is_bitwise_equal_to_reference(
        kind_a in 0usize..6,
        kind_b in 0usize..6,
        pieces_a in 0usize..24,
        pieces_b in 0usize..24,
        long_a in any::<bool>(),
        long_b in any::<bool>(),
        seed in 0u64..1_000_000,
    ) {
        let a = gen_string(kind_a, pieces_a, long_a, seed);
        let b = gen_string(kind_b, pieces_b, long_b, seed.wrapping_add(0x9e3779b97f4a7c15));
        assert_all_measures_agree(&a, &b);
    }

    #[test]
    fn regex_driven_ascii_pairs_agree(
        a in "[a-z0-9]{0,10}( [a-z0-9]{0,10}){0,4}",
        b in "[a-z0-9]{0,10}( [a-z0-9]{0,10}){0,4}",
    ) {
        assert_all_measures_agree(&a, &b);
    }
}

/// Hand-picked shapes that historically break edit-distance kernels: the
/// 64/65-char block boundary, equal inputs (short-circuit bit pinning),
/// one-sided emptiness, combining-mark prefixes.
#[test]
fn targeted_edge_shapes_agree() {
    let b64 = "ab".repeat(32);
    let b65 = format!("{b64}x");
    let cases = [
        (String::new(), String::new()),
        (String::new(), "a".into()),
        ("  ".into(), "\t".into()),
        (b64.clone(), b64.clone()),
        (b64.clone(), b65.clone()),
        (b65.clone(), b65.clone()),
        ("а".repeat(64), "а".repeat(65)),
        ("a\u{0301}".into(), "á".into()),
        ("x".repeat(200), "y".repeat(200)),
        ("martha jones 1999".into(), "marhta jones 2003".into()),
    ];
    for (a, b) in &cases {
        assert_all_measures_agree(a, b);
        assert_all_measures_agree(b, a);
        assert_all_measures_agree(a, a);
    }
}

/// Scores must not depend on id assignment: preparing through differently
/// pre-seeded interners yields bit-identical scores.
#[test]
fn interner_id_assignment_cannot_change_scores() {
    let (a, b) = ("deep entity matching 1999", "entity matching deep 2003");
    for m in ALL {
        let mut fresh = StrInterner::new();
        let pa = m.prepare_interned_with(SimKernel::Fast, a, &mut fresh);
        let pb = m.prepare_interned_with(SimKernel::Fast, b, &mut fresh);
        let fresh_score = m.prepared_with(SimKernel::Fast, &pa, &pb);

        let mut seeded = StrInterner::new();
        for w in ["zzz", "matching", "qqq", "entity", "2003"] {
            seeded.intern(w);
        }
        let qa = m.prepare_interned_with(SimKernel::Fast, a, &mut seeded);
        let qb = m.prepare_interned_with(SimKernel::Fast, b, &mut seeded);
        let seeded_score = m.prepared_with(SimKernel::Fast, &qa, &qb);

        assert_eq!(fresh_score.to_bits(), seeded_score.to_bits(), "{m:?}");
        assert_eq!(
            fresh_score.to_bits(),
            m.text_with(SimKernel::Reference, a, b).to_bits(),
            "{m:?}"
        );
    }
}

//! Property-based tests: every comparator must behave like a similarity —
//! bounded in [0, 1], reflexive at 1, and (where documented) symmetric.

use proptest::prelude::*;
use transer_similarity::*;

fn word() -> impl Strategy<Value = String> {
    "[a-z '\\-]{0,24}"
}

fn all_text_measures() -> Vec<Measure> {
    vec![
        Measure::Jaro,
        Measure::JaroWinkler,
        Measure::Levenshtein,
        Measure::TokenJaccard,
        Measure::QgramJaccard(2),
        Measure::QgramJaccard(3),
        Measure::TokenDice,
        Measure::QgramDice(2),
        Measure::TokenOverlap,
        Measure::Lcs,
        Measure::MongeElkanJw,
        Measure::Soundex,
        Measure::Exact,
        Measure::Year,
        Measure::Numeric(10.0),
    ]
}

proptest! {
    #[test]
    fn scores_bounded(a in word(), b in word()) {
        for m in all_text_measures() {
            let s = m.text(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s), "{m:?} gave {s} on {a:?} / {b:?}");
        }
    }

    #[test]
    fn reflexive(a in word()) {
        for m in [
            Measure::Jaro,
            Measure::JaroWinkler,
            Measure::Levenshtein,
            Measure::TokenJaccard,
            Measure::QgramJaccard(2),
            Measure::TokenDice,
            Measure::TokenOverlap,
            Measure::Lcs,
            Measure::MongeElkanJw,
            Measure::Soundex,
            Measure::Exact,
        ] {
            let s = m.text(&a, &a);
            prop_assert!((s - 1.0).abs() < 1e-12, "{m:?} not reflexive on {a:?}: {s}");
        }
    }

    #[test]
    fn symmetric_measures(a in word(), b in word()) {
        for m in [
            Measure::Jaro,
            Measure::JaroWinkler,
            Measure::Levenshtein,
            Measure::TokenJaccard,
            Measure::QgramJaccard(2),
            Measure::TokenDice,
            Measure::TokenOverlap,
            Measure::Lcs,
            Measure::MongeElkanJw,
            Measure::Soundex,
            Measure::Exact,
        ] {
            let ab = m.text(&a, &b);
            let ba = m.text(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-12, "{m:?} asymmetric on {a:?} / {b:?}");
        }
    }

    #[test]
    fn levenshtein_triangle_inequality(a in word(), b in word(), c in word()) {
        let ab = levenshtein(&a, &b);
        let bc = levenshtein(&b, &c);
        let ac = levenshtein(&a, &c);
        prop_assert!(ac <= ab + bc);
    }

    #[test]
    fn damerau_never_exceeds_levenshtein(a in word(), b in word()) {
        prop_assert!(damerau_levenshtein(&a, &b) <= levenshtein(&a, &b));
    }

    #[test]
    fn levenshtein_bounded_by_longer_length(a in word(), b in word()) {
        let d = levenshtein(&a, &b);
        prop_assert!(d <= a.chars().count().max(b.chars().count()));
        prop_assert!(d >= a.chars().count().abs_diff(b.chars().count()));
    }

    #[test]
    fn jaro_winkler_dominates_jaro(a in word(), b in word()) {
        prop_assert!(jaro_winkler(&a, &b) >= jaro(&a, &b) - 1e-12);
    }

    #[test]
    fn lcs_bounded_by_shorter(a in word(), b in word()) {
        prop_assert!(lcs_len(&a, &b) <= a.chars().count().min(b.chars().count()));
    }

    #[test]
    fn numeric_similarity_bounds(a in -1.0e6..1.0e6f64, b in -1.0e6..1.0e6f64, d in 0.001..1.0e5f64) {
        let s = numeric_similarity(a, b, d);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((numeric_similarity(a, a, d) - 1.0).abs() < 1e-12);
        prop_assert!((s - numeric_similarity(b, a, d)).abs() < 1e-12);
    }

    #[test]
    fn soundex_code_shape(a in "[a-zA-Z]{1,16}") {
        let code = soundex(&a);
        prop_assert_eq!(code.len(), 4);
        let mut chars = code.chars();
        prop_assert!(chars.next().unwrap().is_ascii_uppercase());
        prop_assert!(chars.all(|c| c.is_ascii_digit()));
    }

    #[test]
    fn dice_jaccard_relation(a in word(), b in word()) {
        let j = jaccard_tokens(&a, &b);
        let d = dice_tokens(&a, &b);
        prop_assert!((d - 2.0 * j / (1.0 + j)).abs() < 1e-9);
    }
}

//! The allocation-free steady-state invariant of the fast similarity
//! kernels, checked against the *real* global allocator: after one
//! warm-up pass (which may grow thread-local scratch), scoring prepared
//! pairs must perform **zero** heap allocations, for every measure.
//!
//! This turns the "allocation-free after warm-up" design claim of the
//! fast-kernel engine from a code-review statement into a tier-1 tested
//! invariant — any future kernel change that sneaks a `Vec::push` or a
//! `String` into a scoring path fails here, not in a profile.

use std::sync::Mutex;

use transer_similarity::{Measure, PreparedText, SimKernel};

// An unused `--extern` crate is never loaded, and an unloaded crate's
// `#[global_allocator]` is never registered — this linkage is what swaps
// the test binary's allocator to the counting one.
use transer_common as _;

/// Allocation accounting is process-global; tests serialise here.
static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Every measure in the workspace, with the steady-state label used in
/// failure messages.
const MEASURES: [(&str, Measure); 15] = [
    ("jaro", Measure::Jaro),
    ("jaro_winkler", Measure::JaroWinkler),
    ("levenshtein", Measure::Levenshtein),
    ("lcs", Measure::Lcs),
    ("token_jaccard", Measure::TokenJaccard),
    ("token_dice", Measure::TokenDice),
    ("token_overlap", Measure::TokenOverlap),
    ("qgram_jaccard_2", Measure::QgramJaccard(2)),
    ("qgram_dice_3", Measure::QgramDice(3)),
    ("qgram_jaccard_4", Measure::QgramJaccard(4)),
    ("monge_elkan_jw", Measure::MongeElkanJw),
    ("soundex", Measure::Soundex),
    ("exact", Measure::Exact),
    ("numeric_5", Measure::Numeric(5.0)),
    ("year", Measure::Year),
];

/// ER-shaped corpus: names, multi-token titles (unicode, one past the
/// 64-char single-block Myers limit), years, plus empties and near-twins.
const CORPUS: [(&str, &str); 8] = [
    ("maria garcía", "maria garcia"),
    ("transfer learning for entity resolution", "transfer lerning for entity resolution"),
    ("smith-jones", "smith jones"),
    ("наука о данных", "наука о дачных"),
    (
        "entity entity entity entity entity entity entity entity entity entity entity one",
        "entity entity entity entity entity entity entity entity entity entity entity two",
    ),
    ("1999", "2001"),
    ("", "nonempty"),
    ("identical value", "identical value"),
];

fn prepared_corpus(measure: Measure) -> Vec<(PreparedText, PreparedText)> {
    CORPUS
        .iter()
        .map(|(a, b)| {
            (measure.prepare_with(SimKernel::Fast, a), measure.prepare_with(SimKernel::Fast, b))
        })
        .collect()
}

#[test]
fn prepared_fast_scoring_is_allocation_free_after_warm_up() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let alloc = &transer_trace::alloc::set_enabled;
    let mut dirty: Vec<String> = Vec::new();
    for (label, measure) in MEASURES {
        let corpus = prepared_corpus(measure);
        // Warm-up: one full pass may grow thread-local kernel scratch.
        let mut sink = 0.0;
        for (a, b) in &corpus {
            sink += measure.prepared_with(SimKernel::Fast, a, b);
        }
        // Steady state: several passes under live allocation counting.
        alloc(true);
        let (c0, b0) = transer_trace::alloc::thread_counters();
        for _ in 0..3 {
            for (a, b) in &corpus {
                sink += measure.prepared_with(SimKernel::Fast, a, b);
            }
        }
        let (c1, b1) = transer_trace::alloc::thread_counters();
        alloc(false);
        std::hint::black_box(sink);
        if c1 != c0 || b1 != b0 {
            dirty.push(format!("{label}: {} allocations / {} bytes", c1 - c0, b1 - b0));
        }
    }
    assert!(dirty.is_empty(), "steady-state allocations in: {}", dirty.join(", "));
}

#[test]
fn preparation_itself_is_observed_as_allocating() {
    // Control for the invariant test above: the counting allocator must
    // actually be live in this binary, otherwise "zero allocations" would
    // be vacuous. Preparation builds owned profiles, so it must count.
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    transer_trace::alloc::set_enabled(true);
    let (c0, _) = transer_trace::alloc::thread_counters();
    let corpus = prepared_corpus(Measure::TokenJaccard);
    std::hint::black_box(&corpus);
    let (c1, _) = transer_trace::alloc::thread_counters();
    transer_trace::alloc::set_enabled(false);
    assert!(c1 > c0, "preparing {} pairs must allocate", corpus.len());
}

//! k-NN index benchmarks: the SEL phase's dominant cost is two k-NN
//! queries per source instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use transer_common::FeatureMatrix;
use transer_knn::{brute_force_knn, BallTree, KdTree};

fn cloud(n: usize, m: usize, seed: u64) -> FeatureMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> =
        (0..n).map(|_| (0..m).map(|_| rng.random_range(0.0..1.0)).collect()).collect();
    FeatureMatrix::from_vecs(&rows).unwrap()
}

fn bench_knn(c: &mut Criterion) {
    let mut g = c.benchmark_group("knn");
    for &n in &[1_000usize, 10_000] {
        let points = cloud(n, 8, 7);
        g.bench_with_input(BenchmarkId::new("build", n), &points, |b, p| {
            b.iter(|| KdTree::build(black_box(p)))
        });
        let tree = KdTree::build(&points);
        let query = points.row(n / 2).to_vec();
        g.bench_with_input(BenchmarkId::new("k7_query", n), &tree, |b, t| {
            b.iter(|| t.k_nearest(black_box(&query), 7))
        });
        g.bench_with_input(BenchmarkId::new("balltree_build", n), &points, |b, p| {
            b.iter(|| BallTree::build(black_box(p)))
        });
        let ball = BallTree::build(&points);
        g.bench_with_input(BenchmarkId::new("balltree_k7_query", n), &ball, |b, t| {
            b.iter(|| t.k_nearest(black_box(&query), 7))
        });
        if n <= 1_000 {
            g.bench_with_input(BenchmarkId::new("brute_force_k7", n), &points, |b, p| {
                b.iter(|| brute_force_knn(black_box(p), black_box(&query), 7, None))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_knn);
criterion_main!(benches);

//! Tree-engine benchmarks: per-node-sort reference vs presorted
//! exact-greedy training, for a single deep tree and a bagged forest, on
//! the real bibliographic workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use transer_bench::biblio_pair;
use transer_ml::{Classifier, DecisionTree, RandomForest, RandomForestConfig, TreeEngine};

fn bench_forest(c: &mut Criterion) {
    let pair = biblio_pair();
    let (x, y) = (&pair.source.x, &pair.source.y);

    let mut g = c.benchmark_group("tree_fit");
    for engine in [TreeEngine::Reference, TreeEngine::Presorted] {
        g.bench_function(BenchmarkId::new(engine.name(), "biblio"), |b| {
            b.iter(|| {
                let mut tree = DecisionTree::default().with_engine(engine).with_threads(1);
                tree.fit(black_box(x), black_box(y)).expect("tree fit");
                tree
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("forest_fit");
    g.sample_size(10);
    let config = RandomForestConfig::default();
    for engine in [TreeEngine::Reference, TreeEngine::Presorted] {
        for threads in [1, 4] {
            g.bench_function(BenchmarkId::new(engine.name(), format!("biblio_t{threads}")), |b| {
                b.iter(|| {
                    let mut rf =
                        RandomForest::new(config, 42).with_engine(engine).with_threads(threads);
                    rf.fit(black_box(x), black_box(y)).expect("forest fit");
                    rf
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_forest);
criterion_main!(benches);

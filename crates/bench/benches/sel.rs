//! SEL / duplicate-aware k-NN benchmarks: the per-row reference path vs
//! the interned engine on its backends, plus the engine's build cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use transer_bench::biblio_pair;
use transer_core::{
    select_instances_per_row_with_pool, select_instances_with_backend, IndexKind, TransErConfig,
};
use transer_eval::sel_bench::{round_features, tile_rows};
use transer_knn::DedupKnn;
use transer_parallel::Pool;

fn bench_sel(c: &mut Criterion) {
    let pair = biblio_pair();
    let config = TransErConfig::default();
    let pool = Pool::sequential();

    // Duplicate-heavy variant: rounded to the 0.1 grid and tiled.
    let (dup_xs, dup_ys) = tile_rows(&round_features(&pair.source.x, 1), Some(&pair.source.y), 8);
    let (dup_xt, _) = tile_rows(&round_features(&pair.target.x, 1), None, 8);

    let mut g = c.benchmark_group("sel");
    for (name, xs, ys, xt) in [
        ("biblio", &pair.source.x, &pair.source.y, &pair.target.x),
        ("biblio_dup8", &dup_xs, &dup_ys, &dup_xt),
    ] {
        g.bench_function(BenchmarkId::new("per_row", name), |b| {
            b.iter(|| {
                select_instances_per_row_with_pool(
                    black_box(xs),
                    black_box(ys),
                    black_box(xt),
                    &config,
                    &pool,
                )
                .expect("selection")
            })
        });
        for kind in [IndexKind::KdTree, IndexKind::Blocked, IndexKind::Auto] {
            g.bench_function(BenchmarkId::new(format!("dedup_{kind:?}"), name), |b| {
                b.iter(|| {
                    select_instances_with_backend(
                        black_box(xs),
                        black_box(ys),
                        black_box(xt),
                        &config,
                        &pool,
                        kind,
                    )
                    .expect("selection")
                })
            });
        }
    }
    g.finish();

    let mut g = c.benchmark_group("dedup_knn");
    for (name, m) in [("biblio", &pair.source.x), ("biblio_dup8", &dup_xs)] {
        for kind in [IndexKind::KdTree, IndexKind::Blocked] {
            g.bench_function(BenchmarkId::new(format!("build_{kind:?}"), name), |b| {
                b.iter(|| DedupKnn::build(black_box(m), kind))
            });
        }
        let engine = DedupKnn::build(m, IndexKind::Auto);
        let query = m.row(m.rows() / 2).to_vec();
        g.bench_function(BenchmarkId::new("k7_query", name), |b| {
            b.iter(|| engine.k_nearest(black_box(&query), 7))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sel);
criterion_main!(benches);

//! One benchmark per paper *figure*: the code regenerating each figure's
//! series.
//!
//! Figure 2 — similarity distributions; Figure 5 — decay curves; Figure 6
//! — one labelled-fraction point; Figure 7 — one parameter-sweep point.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use transer_bench::{biblio_pair, BENCH_SCALE, BENCH_SEED};
use transer_core::decay::exp_decay_5;
use transer_eval::sensitivity::SweptParameter;
use transer_eval::{directed_tasks, run_transer};
use transer_metrics::Histogram;
use transer_ml::{stratified_fraction, ClassifierKind};

fn bench_figures(c: &mut Criterion) {
    let pair = biblio_pair();
    let tasks = directed_tasks(BENCH_SCALE, BENCH_SEED).unwrap();
    let task = &tasks[0];
    let classifiers = [ClassifierKind::LogisticRegression];

    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("fig2/distribution_histogram", |b| {
        b.iter(|| Histogram::from_values(20, black_box(&pair.target.x).row_means()))
    });

    g.bench_function("fig5/decay_curve", |b| {
        b.iter(|| (0..=100).map(|i| exp_decay_5(i as f64 / 100.0)).sum::<f64>())
    });

    g.bench_function("fig6/half_labelled_point", |b| {
        b.iter(|| {
            let keep = stratified_fraction(black_box(&task.source.y), 0.5, 7);
            let reduced = transer_eval::EvalTask {
                name: task.name.clone(),
                source: task.source.select(&keep),
                target: task.target.clone(),
                source_texts: keep.iter().map(|&i| task.source_texts[i].clone()).collect(),
                target_texts: task.target_texts.clone(),
            };
            run_transer(Default::default(), &reduced, &classifiers, 7).unwrap()
        })
    });

    g.bench_function("fig7/tc_sweep_point", |b| {
        let cfg = SweptParameter::Tc.config(0.8);
        b.iter(|| run_transer(cfg, black_box(task), &classifiers, 7).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);

//! Micro-benchmarks of the record-pair comparison step's similarity
//! functions — the per-pair cost every experiment pays.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use transer_similarity::*;

fn bench_similarity(c: &mut Criterion) {
    let name_a = "alexander macdonald";
    let name_b = "alexandr mcdonald";
    let title_a = "efficient adaptive indexing for scalable entity resolution systems";
    let title_b = "eficient adaptive indexes for scalable entity resolution";

    let mut g = c.benchmark_group("similarity");
    g.bench_function("jaro_winkler/name", |b| {
        b.iter(|| jaro_winkler(black_box(name_a), black_box(name_b)))
    });
    g.bench_function("levenshtein/name", |b| {
        b.iter(|| levenshtein_similarity(black_box(name_a), black_box(name_b)))
    });
    g.bench_function("token_jaccard/title", |b| {
        b.iter(|| jaccard_tokens(black_box(title_a), black_box(title_b)))
    });
    g.bench_function("qgram_jaccard/title", |b| {
        b.iter(|| jaccard_qgram(black_box(title_a), black_box(title_b), 3))
    });
    g.bench_function("monge_elkan_jw/name", |b| {
        b.iter(|| monge_elkan(black_box(name_a), black_box(name_b), jaro_winkler))
    });
    g.bench_function("soundex/name", |b| {
        b.iter(|| soundex_similarity(black_box(name_a), black_box(name_b)))
    });
    g.finish();
}

criterion_group!(benches, bench_similarity);
criterion_main!(benches);

//! Blocking-step benchmarks: MinHash signatures and LSH candidate
//! generation over generated publication records.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use transer_blocking::{token_hashes, MinHashLsh, MinHashLshConfig};
use transer_datagen::biblio::{self, BiblioConfig};

fn bench_blocking(c: &mut Criterion) {
    let (left, right) = biblio::generate(&BiblioConfig::dblp_acm(1_000, 3));
    let blocker = MinHashLsh::new(MinHashLshConfig::default()).expect("valid LSH config");
    let hashes = token_hashes(&left[0]);

    let mut g = c.benchmark_group("blocking");
    g.bench_function("token_hashes/record", |b| b.iter(|| token_hashes(black_box(&left[0]))));
    g.bench_function("signature/record", |b| b.iter(|| blocker.signature(black_box(&hashes))));
    g.sample_size(20);
    g.bench_function("lsh_candidates/1k_x_1k", |b| {
        b.iter(|| {
            blocker.candidate_pairs_masked(black_box(&left), black_box(&right), Some(&[0, 1]))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_blocking);
criterion_main!(benches);

//! Classifier training benchmarks on ER-shaped data — GEN and TCL each
//! train one of these per run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use transer_bench::biblio_pair;
use transer_ml::ClassifierKind;

fn bench_classifiers(c: &mut Criterion) {
    let pair = biblio_pair();
    let (x, y) = (&pair.source.x, &pair.source.y);
    let mut g = c.benchmark_group("classifiers");
    g.sample_size(10);
    for kind in ClassifierKind::PAPER_SET {
        g.bench_function(format!("fit/{}", kind.name()), |b| {
            b.iter(|| {
                let mut clf = kind.build(7);
                clf.fit(black_box(x), black_box(y)).unwrap();
                clf
            })
        });
    }
    let mut fitted = ClassifierKind::RandomForest.build(7);
    fitted.fit(x, y).unwrap();
    g.bench_function("predict_proba/rf", |b| {
        b.iter(|| fitted.predict_proba(black_box(&pair.target.x)))
    });
    g.finish();
}

criterion_group!(benches, bench_classifiers);
criterion_main!(benches);

//! Ablation benchmarks for the design choices DESIGN.md calls out: the
//! cost of each TransER variant, so the runtime price of every component
//! (SEL's k-NN passes, GEN+TCL's extra training) is measurable in
//! isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use transer_bench::biblio_pair;
use transer_core::{TransEr, TransErConfig, Variant};
use transer_ml::ClassifierKind;

fn bench_ablation(c: &mut Criterion) {
    let pair = biblio_pair();
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    for (name, variant) in Variant::ablation_suite() {
        let cfg = TransErConfig { variant, ..Default::default() };
        let t = TransEr::new(cfg, ClassifierKind::LogisticRegression, 7).unwrap();
        g.bench_with_input(BenchmarkId::new("variant", name), &t, |b, t| {
            b.iter(|| {
                t.fit_predict(
                    black_box(&pair.source.x),
                    black_box(&pair.source.y),
                    black_box(&pair.target.x),
                )
                .unwrap()
            })
        });
    }
    // Neighbourhood size drives the SEL phase's KD-tree cost.
    for k in [3usize, 7, 11] {
        let cfg = TransErConfig { k, ..Default::default() };
        let t = TransEr::new(cfg, ClassifierKind::LogisticRegression, 7).unwrap();
        g.bench_with_input(BenchmarkId::new("k", k), &t, |b, t| {
            b.iter(|| {
                t.fit_predict(
                    black_box(&pair.source.x),
                    black_box(&pair.source.y),
                    black_box(&pair.target.x),
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

//! Phase-level benchmarks of the TransER pipeline itself: SEL, GEN + TCL,
//! and the end-to-end run — the per-task costs behind Table 3.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use transer_bench::{biblio_pair, music_pair};
use transer_core::{generate_pseudo_labels, select_instances, TransEr, TransErConfig};
use transer_ml::ClassifierKind;

fn bench_phases(c: &mut Criterion) {
    let pair = biblio_pair();
    let cfg = TransErConfig::default();
    let mut g = c.benchmark_group("transer_phases");
    g.sample_size(10);

    g.bench_function("sel/biblio", |b| {
        b.iter(|| {
            select_instances(
                black_box(&pair.source.x),
                black_box(&pair.source.y),
                black_box(&pair.target.x),
                &cfg,
            )
            .unwrap()
        })
    });

    let sel = select_instances(&pair.source.x, &pair.source.y, &pair.target.x, &cfg).unwrap();
    let (xu, yu) = sel.transferred(&pair.source.x, &pair.source.y);
    g.bench_function("gen/biblio", |b| {
        b.iter(|| {
            let mut clf = ClassifierKind::LogisticRegression.build(7);
            generate_pseudo_labels(clf.as_mut(), black_box(&xu), black_box(&yu), &pair.target.x)
                .unwrap()
        })
    });

    let transer = TransEr::new(cfg, ClassifierKind::LogisticRegression, 7).unwrap();
    g.bench_function("full_pipeline/biblio", |b| {
        b.iter(|| {
            transer
                .fit_predict(
                    black_box(&pair.source.x),
                    black_box(&pair.source.y),
                    black_box(&pair.target.x),
                )
                .unwrap()
        })
    });

    let music = music_pair();
    g.bench_function("full_pipeline/music", |b| {
        b.iter(|| {
            transer
                .fit_predict(
                    black_box(&music.source.x),
                    black_box(&music.source.y),
                    black_box(&music.target.x),
                )
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);

//! Sequential-vs-parallel benchmarks for the `transer-parallel` pool wired
//! into the hot paths: feature comparison, SEL instance scoring and random
//! forest training. Each workload runs at 1, 2 and N workers (N = the
//! machine's available parallelism) so the speedup curve is visible in one
//! report; results are bit-identical across worker counts by construction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use transer_bench::{biblio_pair, BENCH_SEED};
use transer_blocking::MinHashLsh;
use transer_core::{select_instances_with_pool, TransErConfig};
use transer_datagen::Scenario;
use transer_ml::{Classifier, RandomForest};
use transer_parallel::Pool;

fn worker_counts() -> Vec<usize> {
    let n = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let mut counts = vec![1, 2, n];
    counts.dedup();
    counts
}

fn bench_parallel(c: &mut Criterion) {
    let scenario = Scenario::DblpAcm;
    let entities = 400;
    let (left, right) = transer_datagen::biblio::generate(
        &transer_datagen::biblio::BiblioConfig::dblp_acm(entities, BENCH_SEED),
    );
    let blocker = MinHashLsh::new(scenario.lsh_config()).expect("valid LSH config");
    let pairs = blocker.candidate_pairs_masked(&left, &right, Some(scenario.blocking_attrs()));
    let comparison = scenario.comparison();

    let mut g = c.benchmark_group("parallel");
    g.sample_size(10);
    for workers in worker_counts() {
        let pool = Pool::new(workers);
        g.bench_function(format!("compare/{}pairs/t{workers}", pairs.len()), |b| {
            b.iter(|| {
                comparison.compare_pairs_with_pool(
                    black_box(&left),
                    black_box(&right),
                    black_box(&pairs),
                    &pool,
                )
            })
        });
    }

    let pair = biblio_pair();
    let config = TransErConfig::default();
    for workers in worker_counts() {
        let pool = Pool::new(workers);
        g.bench_function(format!("sel/{}rows/t{workers}", pair.source.x.rows()), |b| {
            b.iter(|| {
                select_instances_with_pool(
                    black_box(&pair.source.x),
                    black_box(&pair.source.y),
                    black_box(&pair.target.x),
                    &config,
                    &pool,
                )
                .unwrap()
            })
        });
    }

    for workers in worker_counts() {
        g.bench_function(format!("forest_fit/{}rows/t{workers}", pair.source.x.rows()), |b| {
            b.iter(|| {
                let mut rf = RandomForest::with_seed(BENCH_SEED).with_threads(workers);
                rf.fit(black_box(&pair.source.x), black_box(&pair.source.y)).unwrap();
                rf
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);

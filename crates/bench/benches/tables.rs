//! One benchmark per paper *table*: the code that regenerates each table,
//! exercised end to end at a bench-friendly scale.
//!
//! Table 1 — data set characteristics; Table 2 — one quality-comparison
//! cell (TransER + Naive on one directed task); Table 3 — a runtime row;
//! Table 4 — the ablation suite on one task.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use transer_baselines::{Naive, ResourceBudget, RunContext, TransferMethod};
use transer_bench::{BENCH_SCALE, BENCH_SEED};
use transer_core::{TransEr, TransErConfig, Variant};
use transer_datagen::ScenarioPair;
use transer_eval::characteristics::{common_stats, dataset_stats};
use transer_eval::{directed_tasks, run_transer};
use transer_ml::ClassifierKind;

fn bench_tables(c: &mut Criterion) {
    let pair = ScenarioPair::Bibliographic.domain_pair(BENCH_SCALE, BENCH_SEED).unwrap();
    let tasks = directed_tasks(BENCH_SCALE, BENCH_SEED).unwrap();
    let task = &tasks[0];
    let classifiers = [ClassifierKind::LogisticRegression];

    let mut g = c.benchmark_group("tables");
    g.sample_size(10);

    g.bench_function("table1/characteristics", |b| {
        b.iter(|| {
            let a = dataset_stats(black_box(&pair.source));
            let bb = dataset_stats(black_box(&pair.target));
            let common = common_stats(&pair.source, &pair.target);
            (a, bb, common)
        })
    });

    g.bench_function("table2/transer_cell", |b| {
        b.iter(|| run_transer(TransErConfig::default(), black_box(task), &classifiers, 7).unwrap())
    });

    g.bench_function("table3/naive_runtime_row", |b| {
        b.iter(|| {
            let ctx =
                RunContext::new(ClassifierKind::LogisticRegression, 7, ResourceBudget::default());
            Naive.run(black_box(&task.view()), &ctx).unwrap()
        })
    });

    g.bench_function("table4/ablation_without_sel", |b| {
        let cfg = TransErConfig { variant: Variant::without_sel(), ..Default::default() };
        let t = TransEr::new(cfg, ClassifierKind::LogisticRegression, 7).unwrap();
        b.iter(|| {
            t.fit_predict(
                black_box(&task.source.x),
                black_box(&task.source.y),
                black_box(&task.target.x),
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);

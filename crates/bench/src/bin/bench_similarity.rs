//! Similarity kernel micro-benchmark: per-measure ns/pair under the
//! `reference` and `fast` engines, through the direct (`text_with`),
//! prepared (`prepare_with` + `prepared_with`) and interned
//! (`prepare_interned_with`) paths, over a deterministic corpus of
//! ER-shaped values (person names, token-heavy titles with unicode and
//! >64-char outliers, years).
//!
//! Every timed pair is first *verified* bitwise-equal across engines, so
//! the artefact (`results/BENCH_similarity.json`) doubles as an
//! equivalence witness on realistic data.
//!
//! `--smoke` shrinks the corpus, validates the JSON artefact round-trip
//! and asserts the trace-counter partition invariant
//! (`similarity.kernel.bitparallel + fallback == levenshtein.calls`)
//! with non-zero counts — the tier-1 hook.

use std::time::Instant;

use transer_common::StrInterner;
use transer_similarity::{Measure, PreparedText, SimKernel};
use transer_trace::json::{self, obj, Json};
use transer_trace::RunLedger;

/// The benchmarked measures with stable artefact labels.
const MEASURES: [(&str, Measure); 15] = [
    ("jaro", Measure::Jaro),
    ("jaro_winkler", Measure::JaroWinkler),
    ("levenshtein", Measure::Levenshtein),
    ("lcs", Measure::Lcs),
    ("token_jaccard", Measure::TokenJaccard),
    ("token_dice", Measure::TokenDice),
    ("token_overlap", Measure::TokenOverlap),
    ("qgram_jaccard_2", Measure::QgramJaccard(2)),
    ("qgram_dice_3", Measure::QgramDice(3)),
    ("qgram_jaccard_4", Measure::QgramJaccard(4)),
    ("monge_elkan_jw", Measure::MongeElkanJw),
    ("soundex", Measure::Soundex),
    ("exact", Measure::Exact),
    ("numeric_5", Measure::Numeric(5.0)),
    ("year", Measure::Year),
];

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const FIRST: [&str; 8] = ["maria", "josé", "wei", "anna", "peter", "olga", "jean", "müller"];
const LAST: [&str; 8] =
    ["smith", "o'brien", "garcía", "иванов", "nguyen", "smith-jones", "lee", "schmidt"];
const TITLE_WORDS: [&str; 14] = [
    "transfer",
    "learning",
    "entity",
    "resolution",
    "homogeneous",
    "matching",
    "record",
    "linkage",
    "données",
    "наука",
    "scalable",
    "blocking",
    "similarity",
    "kernels",
];

/// One corpus value plus a typo-perturbed twin, so pair scores land in the
/// interesting middle of `[0, 1]`.
fn perturb(s: &str, rng: &mut u64) -> String {
    let mut chars: Vec<char> = s.chars().collect();
    if chars.len() >= 2 {
        for _ in 0..1 + splitmix(rng) % 2 {
            let i = (splitmix(rng) as usize) % (chars.len() - 1);
            match splitmix(rng) % 3 {
                0 => chars.swap(i, i + 1),
                1 => chars[i] = 'x',
                _ => {
                    chars.remove(i);
                }
            }
        }
    }
    chars.into_iter().collect()
}

/// The deterministic pair corpus: names, titles (some unicode, some past
/// the 64-char bit-parallel block), years; each paired with a perturbed
/// twin, an unrelated value, or itself.
fn value(kind: u64, rng: &mut u64) -> String {
    match kind {
        0 => format!(
            "{} {}",
            FIRST[(splitmix(rng) as usize) % FIRST.len()],
            LAST[(splitmix(rng) as usize) % LAST.len()]
        ),
        1 => {
            let words = 3 + (splitmix(rng) as usize) % 6;
            let mut s = String::new();
            for w in 0..words {
                if w > 0 {
                    s.push(' ');
                }
                s.push_str(TITLE_WORDS[(splitmix(rng) as usize) % TITLE_WORDS.len()]);
            }
            if splitmix(rng).is_multiple_of(8) {
                // Past the single-block Myers limit.
                for _ in 0..10 {
                    s.push_str(" entity");
                }
            }
            s
        }
        _ => format!("{}", 1900 + splitmix(rng) % 120),
    }
}

fn build_pairs(n: usize, seed: u64) -> Vec<(String, String)> {
    let mut rng = seed;
    (0..n)
        .map(|i| {
            let a = value((i % 3) as u64, &mut rng);
            let b = match splitmix(&mut rng) % 4 {
                0 => a.clone(),
                1 => value((i % 3) as u64, &mut rng),
                _ => perturb(&a, &mut rng),
            };
            (a, b)
        })
        .collect()
}

/// Verify bitwise equivalence of every path on every pair, then return
/// the reference scores (also the black-box sink for the timed loops).
fn verify(measure: Measure, pairs: &[(String, String)]) {
    let mut interner = StrInterner::new();
    for (a, b) in pairs {
        let want = measure.text_with(SimKernel::Reference, a, b);
        let fast = measure.text_with(SimKernel::Fast, a, b);
        assert_eq!(fast.to_bits(), want.to_bits(), "direct {measure:?} on ({a:?}, {b:?})");
        for kernel in [SimKernel::Reference, SimKernel::Fast] {
            let pa = measure.prepare_with(kernel, a);
            let pb = measure.prepare_with(kernel, b);
            let got = measure.prepared_with(kernel, &pa, &pb);
            assert_eq!(got.to_bits(), want.to_bits(), "prepared {measure:?} on ({a:?}, {b:?})");
        }
        let ia = measure.prepare_interned_with(SimKernel::Fast, a, &mut interner);
        let ib = measure.prepare_interned_with(SimKernel::Fast, b, &mut interner);
        let got = measure.prepared_with(SimKernel::Fast, &ia, &ib);
        assert_eq!(got.to_bits(), want.to_bits(), "interned {measure:?} on ({a:?}, {b:?})");
    }
}

/// Run `pass` repeatedly until `budget_ms` of wall time is spent (at least
/// twice), and return ns per pair. One warm-up pass populates the
/// thread-local scratch so allocation-free steady state is what's timed.
fn time_ns_per_pair(pairs: usize, budget_ms: u64, mut pass: impl FnMut() -> f64) -> f64 {
    let mut sink = pass();
    let start = Instant::now();
    let mut passes = 0u32;
    while passes < 2 || start.elapsed().as_millis() < u128::from(budget_ms) {
        sink += pass();
        passes += 1;
    }
    std::hint::black_box(sink);
    start.elapsed().as_nanos() as f64 / (f64::from(passes) * pairs as f64)
}

fn direct_pass(measure: Measure, kernel: SimKernel, pairs: &[(String, String)]) -> f64 {
    pairs.iter().map(|(a, b)| measure.text_with(kernel, a, b)).sum()
}

fn prepared_corpus(
    measure: Measure,
    kernel: SimKernel,
    pairs: &[(String, String)],
) -> Vec<(PreparedText, PreparedText)> {
    pairs
        .iter()
        .map(|(a, b)| (measure.prepare_with(kernel, a), measure.prepare_with(kernel, b)))
        .collect()
}

fn interned_corpus(
    measure: Measure,
    pairs: &[(String, String)],
) -> Vec<(PreparedText, PreparedText)> {
    let mut interner = StrInterner::new();
    pairs
        .iter()
        .map(|(a, b)| {
            (
                measure.prepare_interned_with(SimKernel::Fast, a, &mut interner),
                measure.prepare_interned_with(SimKernel::Fast, b, &mut interner),
            )
        })
        .collect()
}

fn prepared_pass(
    measure: Measure,
    kernel: SimKernel,
    corpus: &[(PreparedText, PreparedText)],
) -> f64 {
    corpus.iter().map(|(a, b)| measure.prepared_with(kernel, a, b)).sum()
}

/// The trace-counter partition invariant, asserted on live counts:
/// every fast Levenshtein kernel run is exactly one of bit-parallel or
/// fallback.
fn check_counter_partition(pairs: &[(String, String)]) {
    transer_trace::set_enabled(true);
    let _ = transer_trace::drain_report();
    let mut sink = 0.0;
    for (a, b) in pairs {
        sink += Measure::Levenshtein.text_with(SimKernel::Fast, a, b);
    }
    std::hint::black_box(sink);
    let report = transer_trace::drain_report();
    transer_trace::set_enabled(false);
    let get = |k: &str| report.counters.get(k).copied().unwrap_or(0);
    let calls = get("similarity.levenshtein.calls");
    let bitparallel = get("similarity.kernel.bitparallel");
    let fallback = get("similarity.kernel.fallback");
    assert!(calls > 0, "levenshtein kernel never ran over {} pairs", pairs.len());
    assert_eq!(
        bitparallel + fallback,
        calls,
        "bitparallel ({bitparallel}) + fallback ({fallback}) must partition calls ({calls})"
    );
    println!(
        "counter partition OK: {calls} calls = {bitparallel} bit-parallel + {fallback} fallback"
    );
}

/// Under `TRANSER_ALLOC_TRACE=1`: after a warm-up pass, a traced
/// steady-state scoring pass over every measure's prepared corpus must
/// attribute **zero** allocations to its span — the live-run form of the
/// allocation-free kernel invariant (`crates/similarity/tests/alloc_free.rs`
/// proves the same claim per measure at unit scale).
fn check_steady_state_alloc_free(pairs: &[(String, String)]) {
    let corpora: Vec<(Measure, Vec<(PreparedText, PreparedText)>)> =
        MEASURES.iter().map(|&(_, m)| (m, prepared_corpus(m, SimKernel::Fast, pairs))).collect();
    let mut sink = 0.0;
    for (measure, corpus) in &corpora {
        sink += prepared_pass(*measure, SimKernel::Fast, corpus); // warm-up
    }
    transer_trace::set_enabled(true);
    let _ = transer_trace::drain_report();
    // Second, *traced* warm-up pass: the kernels record trace counters,
    // and the very first touch of each counter key after a drain inserts
    // a map node — bookkeeping that would otherwise be charged to the
    // steady-state span.
    for (measure, corpus) in &corpora {
        sink += prepared_pass(*measure, SimKernel::Fast, corpus);
    }
    {
        let _span = transer_trace::span("similarity.steady");
        for (measure, corpus) in &corpora {
            sink += prepared_pass(*measure, SimKernel::Fast, corpus);
        }
    }
    let report = transer_trace::drain_report();
    transer_trace::set_enabled(false);
    std::hint::black_box(sink);
    let span = report.find_span("similarity.steady").expect("steady-state span recorded");
    assert_eq!(
        (span.alloc_count, span.alloc_bytes),
        (0, 0),
        "steady-state similarity scoring allocated {} times / {} bytes",
        span.alloc_count,
        span.alloc_bytes
    );
    println!("steady-state alloc-free OK: 0 allocations across {} measures", corpora.len());
}

fn main() {
    let mut ledger = RunLedger::new("bench_similarity");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let path = transer_trace::ledger::out_path(&args, "results/BENCH_similarity.json");
    let path = path.as_str();
    let (n_pairs, budget_ms) = if smoke { (400, 5) } else { (2000, 250) };
    let pairs = build_pairs(n_pairs, 0x5EED);

    let mut rows = Vec::new();
    for (label, measure) in MEASURES {
        verify(measure, &pairs);
        let direct_ref = time_ns_per_pair(n_pairs, budget_ms, || {
            direct_pass(measure, SimKernel::Reference, &pairs)
        });
        let direct_fast =
            time_ns_per_pair(n_pairs, budget_ms, || direct_pass(measure, SimKernel::Fast, &pairs));
        let corpus_ref = prepared_corpus(measure, SimKernel::Reference, &pairs);
        let corpus_fast = prepared_corpus(measure, SimKernel::Fast, &pairs);
        let corpus_ids = interned_corpus(measure, &pairs);
        let prep_ref = time_ns_per_pair(n_pairs, budget_ms, || {
            prepared_pass(measure, SimKernel::Reference, &corpus_ref)
        });
        let prep_fast = time_ns_per_pair(n_pairs, budget_ms, || {
            prepared_pass(measure, SimKernel::Fast, &corpus_fast)
        });
        let prep_ids = time_ns_per_pair(n_pairs, budget_ms, || {
            prepared_pass(measure, SimKernel::Fast, &corpus_ids)
        });
        println!(
            "{label:>16}  direct {direct_ref:>8.1} -> {direct_fast:>8.1} ns/pair ({:>5.2}x)   \
             prepared {prep_ref:>7.1} -> {prep_fast:>7.1} ns/pair ({:>5.2}x)   interned {prep_ids:>7.1}",
            direct_ref / direct_fast,
            prep_ref / prep_fast,
        );
        rows.push(obj(vec![
            ("measure", Json::Str(label.to_string())),
            (
                "direct_ns_per_pair",
                obj(vec![
                    ("reference", Json::Num(direct_ref)),
                    ("fast", Json::Num(direct_fast)),
                    ("speedup", Json::Num(direct_ref / direct_fast)),
                ]),
            ),
            (
                "prepared_ns_per_pair",
                obj(vec![
                    ("reference", Json::Num(prep_ref)),
                    ("fast", Json::Num(prep_fast)),
                    ("interned_fast", Json::Num(prep_ids)),
                    ("speedup", Json::Num(prep_ref / prep_fast)),
                ]),
            ),
        ]));
    }

    check_counter_partition(&pairs);
    if transer_trace::alloc::enabled() {
        check_steady_state_alloc_free(&pairs);
    }

    let report = obj(vec![
        ("version", Json::Num(1.0)),
        ("smoke", Json::Num(f64::from(u8::from(smoke)))),
        ("pairs", Json::Num(n_pairs as f64)),
        ("measures", Json::Arr(rows)),
    ]);
    if let Err(e) = json::write_pretty(path, &report) {
        eprintln!("bench_similarity: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");
    ledger.set_summary(obj(vec![("out", Json::Str(path.to_string()))]));

    if smoke {
        // Round-trip the artefact through the parser.
        let text = std::fs::read_to_string(path).expect("re-read artefact");
        let parsed = json::parse(&text).expect("artefact must parse");
        let n = parsed.get("measures").and_then(Json::as_arr).map_or(0, <[Json]>::len);
        assert_eq!(n, MEASURES.len(), "artefact must cover every measure");
        println!("smoke OK: {n} measures validated");
    }
}

//! Calibrate the grain-dispatch table and record `results/BENCH_grain.json`.
//!
//! Two measurements feed the committed constants in
//! `transer_parallel::grain`:
//!
//! 1. **Dispatch overhead** — the wall-clock cost of routing one batch
//!    through the scoped-thread pool instead of running it inline, taken
//!    as the best-of-reps difference between `AlwaysPool` and
//!    `AlwaysInline` runs of the same trivial map. The inline threshold
//!    must sit well above this number or pooling can never pay.
//! 2. **Per-item cost of the wired hot paths** — MinHash blocking (per
//!    record), pair comparison (per pair), SEL scoring (per source row)
//!    and forest fitting (per tree×row), each timed at bench scale and
//!    divided by its item count. These validate the `CostClass` table
//!    entries the call sites declare.
//!
//! The committed constants are deliberately round numbers in the measured
//! order of magnitude (exact values vary per host); `TRANSER_GRAIN`
//! overrides the threshold at runtime without recompiling.

use std::time::Instant;

use transer_bench::{biblio_pair, BENCH_SCALE, BENCH_SEED};
use transer_blocking::MinHashLsh;
use transer_core::{select_instances_with_pool, TransErConfig};
use transer_datagen::{biblio, Scenario};
use transer_ml::{Classifier, RandomForest};
use transer_parallel::{grain, CostHint, GrainMode, Pool};
use transer_trace::json::{self, obj, Json};
use transer_trace::RunLedger;

/// Repetitions per timing; the minimum damps scheduler noise.
const REPS: usize = 5;

fn time_best<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Measure the cost of one pooled dispatch of a trivial map versus the
/// same map run inline. Uses 2 workers so the pool actually spawns.
fn dispatch_overhead_nanos(items: usize) -> (f64, f64) {
    let data: Vec<u64> = (0..items as u64).collect();
    let hint = CostHint::with_per_item_nanos(items, 1);
    let inline = Pool::new(2).with_grain(GrainMode::AlwaysInline);
    let pooled = Pool::new(2).with_grain(GrainMode::AlwaysPool);
    let secs_inline =
        time_best(|| drop(inline.par_map_costed(&data, hint, |&v| v.wrapping_mul(3))));
    let secs_pooled =
        time_best(|| drop(pooled.par_map_costed(&data, hint, |&v| v.wrapping_mul(3))));
    (secs_inline, secs_pooled)
}

fn workload_row(workload: &str, items: usize, secs: f64) -> Json {
    obj(vec![
        ("workload", Json::Str(workload.to_string())),
        ("items", Json::Num(items as f64)),
        ("secs", Json::Num(secs)),
        ("nanos_per_item", Json::Num(secs * 1e9 / items.max(1) as f64)),
    ])
}

fn main() {
    let mut ledger = RunLedger::new("bench_grain");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = transer_trace::ledger::out_path(&args, "results/BENCH_grain.json");
    let pool = Pool::sequential();

    // Dispatch overhead on a trivial map.
    let overhead_items = 64;
    let (secs_inline, secs_pooled) = dispatch_overhead_nanos(overhead_items);
    let overhead_nanos = ((secs_pooled - secs_inline) * 1e9).max(0.0);

    // Per-item costs of the four wired hot paths, measured sequentially
    // (the per-item figure is what the CostClass table models; dispatch
    // strategy is the variable under calibration, not part of it).
    let mut rows = Vec::new();

    let scenario = Scenario::DblpAcm;
    let entities = ((scenario.base_entities() as f64 * BENCH_SCALE) as usize).max(40);
    let (left, right) = biblio::generate(&biblio::BiblioConfig::dblp_acm(entities, BENCH_SEED));
    let blocker = MinHashLsh::new(scenario.lsh_config()).expect("valid LSH config");
    let attrs = Some(scenario.blocking_attrs());
    let secs = time_best(|| {
        drop(blocker.candidate_pairs_masked_with_pool(&left, &right, attrs, &pool));
    });
    rows.push(workload_row("minhash", left.len() + right.len(), secs));

    let pairs = blocker.candidate_pairs_masked_with_pool(&left, &right, attrs, &pool);
    let comparison = scenario.comparison();
    let secs = time_best(|| drop(comparison.compare_pairs_with_pool(&left, &right, &pairs, &pool)));
    rows.push(workload_row("compare", pairs.len(), secs));

    let pair = biblio_pair();
    let config = TransErConfig::default();
    let secs = time_best(|| {
        select_instances_with_pool(&pair.source.x, &pair.source.y, &pair.target.x, &config, &pool)
            .expect("selection");
    });
    rows.push(workload_row("sel", pair.source.x.rows(), secs));

    let n_trees = 24;
    let secs = time_best(|| {
        let mut rf = RandomForest::with_seed(BENCH_SEED).with_pool(pool);
        rf.fit(&pair.source.x, &pair.source.y).expect("forest fit");
    });
    rows.push(workload_row("forest_fit_tree_row", n_trees * pair.source.x.rows(), secs));

    let report = obj(vec![
        ("version", Json::Num(1.0)),
        (
            "available_parallelism",
            Json::Num(std::thread::available_parallelism().map_or(1, |n| n.get()) as f64),
        ),
        ("scale", Json::Num(BENCH_SCALE)),
        (
            "dispatch",
            obj(vec![
                ("items", Json::Num(overhead_items as f64)),
                ("secs_inline", Json::Num(secs_inline)),
                ("secs_pooled", Json::Num(secs_pooled)),
                ("overhead_nanos", Json::Num(overhead_nanos)),
            ]),
        ),
        ("workloads", Json::Arr(rows)),
        (
            "committed_constants",
            obj(vec![
                ("trivial_nanos", Json::Num(grain::TRIVIAL_NANOS as f64)),
                ("light_nanos", Json::Num(grain::LIGHT_NANOS as f64)),
                ("medium_nanos", Json::Num(grain::MEDIUM_NANOS as f64)),
                ("heavy_nanos", Json::Num(grain::HEAVY_NANOS as f64)),
                ("inline_threshold_nanos", Json::Num(grain::INLINE_THRESHOLD_NANOS as f64)),
                ("chunk_target_nanos", Json::Num(grain::CHUNK_TARGET_NANOS as f64)),
            ]),
        ),
    ]);

    println!("Grain calibration — dispatch overhead {overhead_nanos:.0} ns/dispatch");
    for row in report.get("workloads").and_then(Json::as_arr).unwrap_or(&[]) {
        let name = row.get("workload").and_then(Json::as_str).unwrap_or("?");
        let nanos = row.get("nanos_per_item").and_then(Json::as_num).unwrap_or(0.0);
        println!("  {name:<22} {nanos:>10.0} ns/item");
    }
    if let Err(e) = json::write_pretty(&path, &report) {
        eprintln!("bench_grain: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");
    ledger.set_summary(obj(vec![("out", Json::Str(path))]));
}

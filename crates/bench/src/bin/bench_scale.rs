//! End-to-end scale ladder: drive the full pipeline (scale datagen →
//! MinHash blocking → pair comparison → TransER fit/predict) across
//! 10^4/10^5/10^6 records per domain × {1, 4, 8} workers and record
//! `results/BENCH_scale.json`.
//!
//! Every grid cell runs in a **fresh child process** (this binary
//! re-executed with `TRANSER_BENCH_SCALE_CHILD=<rows>`), for two reasons:
//! the worker count is fixed per process (`TRANSER_THREADS` is read
//! once), and `VmHWM` — the peak-RSS figure each cell reports — is a
//! process-lifetime high-water mark that a shared process would smear
//! across cells. The child prints one JSON object on stdout; the parent
//! parses it with `transer_trace::json` (the vendored serde stub
//! serialises but does not parse).
//!
//! The child also reports a hash of its final labels; the parent asserts
//! the hash is identical across worker counts at each rung, turning the
//! ladder into an end-to-end bit-identity check of the parallel wiring.
//! Each rung's hash is additionally compared against the committed
//! `results/BENCH_scale.json` baseline, so a kernel rewrite that changes
//! any score anywhere in the ladder fails loudly; `--rebaseline` skips
//! the comparison when a behaviour change is intentional.
//!
//! Each rung additionally runs one sequential **reference-kernel control
//! cell** (`TRANSER_SIM_KERNEL=reference`; the fast cells pin `fast`).
//! Its label hash must equal the fast cells' hash — cross-engine
//! end-to-end bit-identity — and its wall-clock against the sequential
//! fast cell yields a same-run kernel speedup figure that is immune to
//! cross-session host drift (absolute throughput on a shared host swings
//! with machine state; two cells minutes apart in one run do not).
//!
//! `--smoke` runs the 10^4 rung only (workers 1 and 2), asserts a finite
//! records/sec figure and validates the written JSON — the tier-1 hook.

use std::process::Command;
use std::time::Instant;

use transer_bench::peak_rss_bytes;
use transer_blocking::MinHashLsh;
use transer_common::{Label, Record};
use transer_core::{TransEr, TransErConfig};
use transer_datagen::{ScaleConfig, ScaleGen};
use transer_ml::ClassifierKind;
use transer_parallel::Pool;
use transer_trace::json::{self, obj, Json};
use transer_trace::RunLedger;

/// Env var carrying the rows-per-domain figure to a grid-cell child.
const CHILD_ENV: &str = "TRANSER_BENCH_SCALE_CHILD";

/// Seeds of the source and target linkage tasks.
const SOURCE_SEED: u64 = 42;
const TARGET_SEED: u64 = 1042;

/// FNV-1a over the final labels: the cross-worker bit-identity witness.
fn label_hash(labels: &[Label]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for l in labels {
        h = (h ^ u64::from(l.is_match())).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One linkage task: generate both domains, block, compare.
fn build_task(rows: usize, seed: u64) -> (transer_common::FeatureMatrix, Vec<Label>, usize) {
    let gen = ScaleGen::new(ScaleConfig::new(rows).with_seed(seed)).expect("valid scale config");
    let (left, right): (Vec<Record>, Vec<Record>) = gen.pair();
    let blocker = MinHashLsh::new(ScaleGen::lsh_config()).expect("valid LSH config");
    let pairs = blocker.candidate_pairs_masked(&left, &right, Some(ScaleGen::blocking_attrs()));
    let n_pairs = pairs.len();
    let (x, y) = ScaleGen::comparison().compare_pairs(&left, &right, &pairs).expect("comparison");
    (x, y, n_pairs)
}

/// Run one grid cell in this process and print its JSON report.
fn run_child(rows: usize) {
    let workers = Pool::global().workers();
    let start = Instant::now();

    let span = transer_trace::timed("scale.source");
    let (xs, ys, pairs_source) = build_task(rows, SOURCE_SEED);
    let secs_source = span.finish();

    let span = transer_trace::timed("scale.target");
    let (xt, _yt, pairs_target) = build_task(rows, TARGET_SEED);
    let secs_target = span.finish();

    let span = transer_trace::timed("scale.pipeline");
    let transer = TransEr::new(TransErConfig::default(), ClassifierKind::RandomForest, SOURCE_SEED)
        .expect("valid config");
    let output = transer.fit_predict(&xs, &ys, &xt).expect("pipeline");
    let secs_pipeline = span.finish();

    let secs_total = start.elapsed().as_secs_f64();
    let records_total = 4 * rows; // two domains per task, two tasks
    let d = &output.diagnostics;
    let report = obj(vec![
        ("rows", Json::Num(rows as f64)),
        ("workers", Json::Num(workers as f64)),
        ("records_total", Json::Num(records_total as f64)),
        ("pairs_source", Json::Num(pairs_source as f64)),
        ("pairs_target", Json::Num(pairs_target as f64)),
        ("secs_total", Json::Num(secs_total)),
        ("records_per_sec", Json::Num(records_total as f64 / secs_total)),
        (
            "phase_secs",
            obj(vec![
                ("source_task", Json::Num(secs_source)),
                ("target_task", Json::Num(secs_target)),
                ("pipeline", Json::Num(secs_pipeline)),
                ("sel", Json::Num(d.sel_secs)),
                ("gen", Json::Num(d.gen_secs)),
                ("tcl", Json::Num(d.tcl_secs)),
            ]),
        ),
        ("selected_count", Json::Num(d.selected_count as f64)),
        (
            "matches_predicted",
            Json::Num(output.labels.iter().filter(|l| l.is_match()).count() as f64),
        ),
        ("label_hash", Json::Str(format!("{:016x}", label_hash(&output.labels)))),
        ("peak_rss_bytes", Json::Num(peak_rss_bytes().unwrap_or(0) as f64)),
    ]);
    println!("{}", report.to_pretty());
}

/// Spawn one grid cell as a child process and parse its report. The
/// similarity kernel engine is pinned explicitly so cells are independent
/// of the ambient `TRANSER_SIM_KERNEL`.
fn run_cell(rows: usize, workers: usize, kernel: &str) -> Result<Json, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let out = Command::new(exe)
        .env(CHILD_ENV, rows.to_string())
        .env("TRANSER_THREADS", workers.to_string())
        .env("TRANSER_SIM_KERNEL", kernel)
        .env_remove("TRANSER_TRACE")
        .output()
        .map_err(|e| format!("spawn cell rows={rows} workers={workers}: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "cell rows={rows} workers={workers} failed: {}\n{}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    json::parse(&stdout).map_err(|e| format!("cell rows={rows} workers={workers}: bad JSON: {e}"))
}

fn num(cell: &Json, key: &str) -> f64 {
    cell.get(key).and_then(Json::as_num).unwrap_or(f64::NAN)
}

/// The committed artefact that carries the per-rung baseline hashes.
const BASELINE_PATH: &str = "results/BENCH_scale.json";

/// Per-rung `rows → label_hash` from an earlier artefact (empty when the
/// file is missing or unreadable — first run on a fresh checkout).
fn baseline_hashes(path: &str) -> Vec<(f64, String)> {
    let Ok(text) = std::fs::read_to_string(path) else { return Vec::new() };
    let Ok(doc) = json::parse(&text) else { return Vec::new() };
    let Some(cells) = doc.get("cells").and_then(Json::as_arr) else { return Vec::new() };
    let mut out: Vec<(f64, String)> = Vec::new();
    for cell in cells {
        let rows = num(cell, "rows");
        let Some(hash) = cell.get("label_hash").and_then(Json::as_str) else { continue };
        if !out.iter().any(|(r, _)| *r == rows) {
            out.push((rows, hash.to_string()));
        }
    }
    out
}

fn main() {
    if let Ok(rows) = std::env::var(CHILD_ENV) {
        match rows.parse::<usize>() {
            Ok(rows) => run_child(rows),
            Err(_) => {
                eprintln!("bench_scale: bad {CHILD_ENV}={rows}");
                std::process::exit(2);
            }
        }
        return;
    }

    let mut ledger = RunLedger::new("bench_scale");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let rebaseline = args.iter().any(|a| a == "--rebaseline");
    let path = transer_trace::ledger::out_path(&args, BASELINE_PATH);
    let path = path.as_str();
    let committed = if rebaseline { Vec::new() } else { baseline_hashes(BASELINE_PATH) };
    let (rung_list, worker_list): (&[usize], &[usize]) =
        if smoke { (&[10_000], &[1, 2]) } else { (&[10_000, 100_000, 1_000_000], &[1, 4, 8]) };

    // One discarded warm-up child: the very first cell otherwise pays the
    // cold-start cost (binary page-in, allocator warm-up) and it is always
    // the sequential fast cell — the denominator of both speedup figures.
    eprintln!("bench_scale: warm-up cell (discarded) ...");
    if let Err(e) = run_cell(rung_list[0], 1, "fast") {
        eprintln!("bench_scale: warm-up: {e}");
    }

    let mut cells = Vec::new();
    let mut failed = false;
    for &rows in rung_list {
        let mut baseline_secs = f64::NAN;
        let mut baseline_hash: Option<String> = None;
        for &workers in worker_list {
            eprintln!("bench_scale: rows={rows} workers={workers} kernel=fast ...");
            let mut cell = match run_cell(rows, workers, "fast") {
                Ok(cell) => cell,
                Err(e) => {
                    eprintln!("bench_scale: {e}");
                    failed = true;
                    continue;
                }
            };
            let secs = num(&cell, "secs_total");
            if workers == worker_list[0] {
                baseline_secs = secs;
            }
            let speedup = baseline_secs / secs;
            let hash = cell.get("label_hash").and_then(Json::as_str).unwrap_or("").to_string();
            if let Some((_, expect)) = committed.iter().find(|(r, _)| *r == rows as f64) {
                if *expect != hash {
                    eprintln!(
                        "bench_scale: BASELINE HASH MISMATCH at rows={rows} workers={workers}: \
                         {hash} != committed {expect} (pass --rebaseline if intentional)"
                    );
                    failed = true;
                }
            }
            match &baseline_hash {
                None => baseline_hash = Some(hash),
                Some(expect) if *expect != hash => {
                    eprintln!(
                        "bench_scale: BIT-IDENTITY VIOLATION at rows={rows}: \
                         workers={workers} hash {hash} != {expect}"
                    );
                    failed = true;
                }
                Some(_) => {}
            }
            if let Json::Obj(map) = &mut cell {
                map.insert("kernel".to_string(), Json::Str("fast".to_string()));
                map.insert("speedup_vs_first".to_string(), Json::Num(speedup));
            }
            println!(
                "rows={rows:>8} workers={workers} total={secs:>8.2}s \
                 {:>10.0} rec/s rss={:>6.0} MiB speedup={speedup:.2}x",
                num(&cell, "records_per_sec"),
                num(&cell, "peak_rss_bytes") / (1024.0 * 1024.0),
            );
            if smoke {
                let rps = num(&cell, "records_per_sec");
                assert!(rps.is_finite() && rps > 0.0, "records/sec must be finite, got {rps}");
            }
            cells.push(cell);
        }

        // Same-run reference-kernel control: one sequential cell per rung
        // under `TRANSER_SIM_KERNEL=reference`. Because it runs minutes —
        // not sessions — apart from the fast cells, the fast-vs-reference
        // ratio it yields is immune to host drift, and its label hash is
        // asserted against the fast cells' hash, making the ladder an
        // end-to-end cross-engine bit-identity check as well.
        eprintln!("bench_scale: rows={rows} workers=1 kernel=reference (control) ...");
        match run_cell(rows, 1, "reference") {
            Ok(mut cell) => {
                let secs = num(&cell, "secs_total");
                let hash = cell.get("label_hash").and_then(Json::as_str).unwrap_or("").to_string();
                if let Some(expect) = &baseline_hash {
                    if *expect != hash {
                        eprintln!(
                            "bench_scale: BIT-IDENTITY VIOLATION at rows={rows}: \
                             reference-kernel hash {hash} != fast {expect}"
                        );
                        failed = true;
                    }
                }
                let speedup = secs / baseline_secs;
                if let Json::Obj(map) = &mut cell {
                    map.insert("kernel".to_string(), Json::Str("reference".to_string()));
                    map.insert("fast_speedup_vs_reference".to_string(), Json::Num(speedup));
                }
                println!(
                    "rows={rows:>8} workers=1 total={secs:>8.2}s \
                     {:>10.0} rec/s kernel=reference fast-speedup={speedup:.2}x",
                    num(&cell, "records_per_sec"),
                );
                cells.push(cell);
            }
            Err(e) => {
                eprintln!("bench_scale: {e}");
                failed = true;
            }
        }
    }

    let report = obj(vec![
        ("version", Json::Num(1.0)),
        (
            "available_parallelism",
            Json::Num(std::thread::available_parallelism().map_or(1, |n| n.get()) as f64),
        ),
        ("smoke", Json::Num(f64::from(u8::from(smoke)))),
        ("cells", Json::Arr(cells)),
    ]);
    if let Err(e) = json::write_pretty(path, &report) {
        eprintln!("bench_scale: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");
    ledger.set_summary(obj(vec![
        ("out", Json::Str(path.to_string())),
        (
            "cells",
            Json::Num(report.get("cells").and_then(Json::as_arr).map_or(0, <[Json]>::len) as f64),
        ),
    ]));

    if smoke {
        // Round-trip the artefact through the parser: the file must be
        // valid JSON with a non-empty cell grid.
        let text = std::fs::read_to_string(path).expect("re-read artefact");
        let parsed = json::parse(&text).expect("artefact must parse");
        let n = parsed.get("cells").and_then(Json::as_arr).map_or(0, <[Json]>::len);
        assert!(n > 0, "smoke grid produced no cells");
        println!("smoke OK: {n} cells validated");
    }
    if failed {
        std::process::exit(1);
    }
}

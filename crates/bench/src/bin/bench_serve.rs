//! Serving-mode benchmark: train once, persist the artefacts, reload them
//! cold, then stream query batches through a warm [`MatchService`] and
//! record `results/BENCH_serve.json`.
//!
//! Per rung (`rows` records per domain):
//!
//! 1. **Train** — the scale generator's source task (seed 42) feeds
//!    `TransEr::fit_predict_with_model` (random forest), whose serving
//!    model is the classifier that produced the final target labels.
//! 2. **Persist** — the model and a fresh LSH index over the target
//!    reference domain (seed 1042, domain 0) are written to disk, then
//!    *reloaded* into the service: every serve cell below runs on the
//!    round-tripped artefacts, so the bench doubles as an end-to-end
//!    persistence check.
//! 3. **Serve** — the target query domain (seed 1042, domain 1) streams
//!    through [`MatchService::query_batch_with_pool`] in batches of
//!    `TRANSER_SERVE_BATCH` (default 256), once sequentially and once on
//!    four workers. Each cell reports sustained queries/sec and
//!    p50/p99/mean/max per-batch latency.
//!
//! The decision stream of every cell is folded into an FNV-1a hash; the
//! two worker counts must agree (serving-path bit-identity), and each
//! rung's hash is compared against the committed
//! `results/BENCH_serve.json` baseline — `--rebaseline` skips the
//! comparison when a behaviour change is intentional. `--smoke` runs the
//! smallest rung only and validates the written JSON — the tier-1 hook.

use std::time::Instant;

use transer_bench::peak_rss_bytes;
use transer_blocking::{LshIndex, MinHashLsh};
use transer_common::{env, FeatureMatrix, Label, Record};
use transer_core::{TransEr, TransErConfig};
use transer_datagen::{ScaleConfig, ScaleGen};
use transer_ml::{ClassifierKind, PersistedModel};
use transer_parallel::Pool;
use transer_serve::{batch_size_from_env, MatchService};
use transer_trace::json::{self, obj, Json};
use transer_trace::RunLedger;

/// Seeds of the training (source) and serving (target) linkage tasks.
const SOURCE_SEED: u64 = 42;
const TARGET_SEED: u64 = 1042;

/// The committed artefact carrying the per-rung baseline hashes.
const BASELINE_PATH: &str = "results/BENCH_serve.json";

/// One linkage task of the training phase: generate, block, compare.
fn build_task(rows: usize, seed: u64) -> (FeatureMatrix, Vec<Label>) {
    let gen = ScaleGen::new(ScaleConfig::new(rows).with_seed(seed)).expect("valid scale config");
    let (left, right): (Vec<Record>, Vec<Record>) = gen.pair();
    let blocker = MinHashLsh::new(ScaleGen::lsh_config()).expect("valid LSH config");
    let pairs = blocker.candidate_pairs_masked(&left, &right, Some(ScaleGen::blocking_attrs()));
    let (x, y) = ScaleGen::comparison().compare_pairs(&left, &right, &pairs).expect("comparison");
    (x, y)
}

/// Train the serving model: run the transfer pipeline on the source task
/// against the target task's features and keep the classifier that
/// labelled the target.
fn train_model(rows: usize) -> PersistedModel {
    let (xs, ys) = build_task(rows, SOURCE_SEED);
    let (xt, _yt) = build_task(rows, TARGET_SEED);
    let transer = TransEr::new(TransErConfig::default(), ClassifierKind::RandomForest, SOURCE_SEED)
        .expect("valid config");
    let (_output, model) = transer.fit_predict_with_model(&xs, &ys, &xt).expect("pipeline");
    model.expect("random forest persists")
}

/// FNV-1a over the decision stream: the serving-path bit-identity witness.
fn fold_decisions(mut h: u64, batch_start: usize, resp: &transer_serve::BatchResponse) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    for d in &resp.decisions {
        h = (h ^ (batch_start + d.query) as u64).wrapping_mul(PRIME);
        h = (h ^ d.reference as u64).wrapping_mul(PRIME);
        h = (h ^ u64::from(d.label.is_match())).wrapping_mul(PRIME);
    }
    h
}

/// Percentile of an already-sorted sample (nearest-rank on `p` in 0–100).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Serve every query through the warm service on `workers` workers;
/// returns the cell report and the decision hash.
fn serve_cell(
    service: &MatchService,
    queries: &[Record],
    batch_size: usize,
    workers: usize,
) -> (Json, u64) {
    let pool = Pool::new(workers);
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut candidates = 0usize;
    let mut matches = 0usize;
    let start = Instant::now();
    for (b, batch) in queries.chunks(batch_size).enumerate() {
        let t = Instant::now();
        let resp = service.query_batch_with_pool(batch, &pool).expect("serve batch");
        latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
        hash = fold_decisions(hash, b * batch_size, &resp);
        candidates += resp.candidates;
        matches += resp.matches;
    }
    let secs = start.elapsed().as_secs_f64();
    latencies_ms.sort_unstable_by(f64::total_cmp);
    let mean = latencies_ms.iter().sum::<f64>() / latencies_ms.len().max(1) as f64;
    let cell = obj(vec![
        ("workers", Json::Num(workers as f64)),
        ("queries", Json::Num(queries.len() as f64)),
        ("batches", Json::Num(latencies_ms.len() as f64)),
        ("candidates", Json::Num(candidates as f64)),
        ("matches", Json::Num(matches as f64)),
        ("secs_serve", Json::Num(secs)),
        ("queries_per_sec", Json::Num(queries.len() as f64 / secs)),
        (
            "batch_latency_ms",
            obj(vec![
                ("p50", Json::Num(percentile(&latencies_ms, 50.0))),
                ("p99", Json::Num(percentile(&latencies_ms, 99.0))),
                ("mean", Json::Num(mean)),
                ("max", Json::Num(percentile(&latencies_ms, 100.0))),
            ]),
        ),
        ("decision_hash", Json::Str(format!("{hash:016x}"))),
    ]);
    (cell, hash)
}

/// Per-rung `rows → decision_hash` from an earlier artefact (empty when
/// missing — first run on a fresh checkout).
fn baseline_hashes(path: &str) -> Vec<(f64, String)> {
    let Ok(text) = std::fs::read_to_string(path) else { return Vec::new() };
    let Ok(doc) = json::parse(&text) else { return Vec::new() };
    let Some(rungs) = doc.get("rungs").and_then(Json::as_arr) else { return Vec::new() };
    rungs
        .iter()
        .filter_map(|rung| {
            let rows = rung.get("rows").and_then(Json::as_num)?;
            let hash = rung
                .get("cells")
                .and_then(Json::as_arr)?
                .first()?
                .get("decision_hash")
                .and_then(Json::as_str)?;
            Some((rows, hash.to_string()))
        })
        .collect()
}

fn main() {
    let mut ledger = RunLedger::new("bench_serve");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let rebaseline = args.iter().any(|a| a == "--rebaseline");
    let path = transer_trace::ledger::out_path(&args, BASELINE_PATH);
    let path = path.as_str();
    let committed = if rebaseline { Vec::new() } else { baseline_hashes(BASELINE_PATH) };
    let rung_list: &[usize] = if smoke { &[2_000] } else { &[2_000, 10_000] };

    let model_path =
        env::raw(env::SERVE_MODEL).unwrap_or_else(|| "target/serve_model.json".to_string());
    let index_path =
        env::raw(env::SERVE_INDEX).unwrap_or_else(|| "target/serve_index.json".to_string());
    let batch_size = batch_size_from_env();

    let mut rungs = Vec::new();
    let mut failed = false;
    for &rows in rung_list {
        eprintln!("bench_serve: rows={rows} training ...");
        let train_start = Instant::now();
        let model = train_model(rows);
        let secs_train = train_start.elapsed().as_secs_f64();

        // The serving corpus: target reference domain vs query domain.
        let gen = ScaleGen::new(ScaleConfig::new(rows).with_seed(TARGET_SEED))
            .expect("valid scale config");
        let (reference, queries) = gen.pair();

        // Persist model + index, then reload both: every serve cell runs
        // on the round-tripped artefacts.
        let index = LshIndex::from_records(
            ScaleGen::lsh_config(),
            Some(ScaleGen::blocking_attrs()),
            &reference,
        )
        .expect("valid LSH config");
        model.save(&model_path).expect("write model artefact");
        index.save(&index_path).expect("write index artefact");
        let load_start = Instant::now();
        let service =
            MatchService::load(ScaleGen::comparison(), &model_path, &index_path, reference)
                .expect("reload persisted artefacts");
        let secs_load = load_start.elapsed().as_secs_f64();

        let mut cells = Vec::new();
        let mut rung_hash: Option<u64> = None;
        for &workers in &[1usize, 4] {
            eprintln!("bench_serve: rows={rows} workers={workers} serving ...");
            let (cell, hash) = serve_cell(&service, &queries, batch_size, workers);
            match rung_hash {
                None => rung_hash = Some(hash),
                Some(expect) if expect != hash => {
                    eprintln!(
                        "bench_serve: BIT-IDENTITY VIOLATION at rows={rows}: \
                         workers={workers} hash {hash:016x} != {expect:016x}"
                    );
                    failed = true;
                }
                Some(_) => {}
            }
            println!(
                "rows={rows:>6} workers={workers} {:>9.0} q/s p50={:.2}ms p99={:.2}ms",
                cell.get("queries_per_sec").and_then(Json::as_num).unwrap_or(f64::NAN),
                cell.get("batch_latency_ms")
                    .and_then(|l| l.get("p50"))
                    .and_then(Json::as_num)
                    .unwrap_or(f64::NAN),
                cell.get("batch_latency_ms")
                    .and_then(|l| l.get("p99"))
                    .and_then(Json::as_num)
                    .unwrap_or(f64::NAN),
            );
            if smoke {
                let qps = cell.get("queries_per_sec").and_then(Json::as_num).unwrap_or(f64::NAN);
                assert!(qps.is_finite() && qps > 0.0, "queries/sec must be finite, got {qps}");
            }
            cells.push(cell);
        }

        let hash = format!("{:016x}", rung_hash.unwrap_or(0));
        if let Some((_, expect)) = committed.iter().find(|(r, _)| *r == rows as f64) {
            if *expect != hash {
                eprintln!(
                    "bench_serve: BASELINE HASH MISMATCH at rows={rows}: \
                     {hash} != committed {expect} (pass --rebaseline if intentional)"
                );
                failed = true;
            }
        }
        rungs.push(obj(vec![
            ("rows", Json::Num(rows as f64)),
            ("model_kind", Json::Str(model.kind().name().to_string())),
            ("secs_train", Json::Num(secs_train)),
            ("secs_load", Json::Num(secs_load)),
            ("cells", Json::Arr(cells)),
        ]));
    }

    let report = obj(vec![
        ("version", Json::Num(1.0)),
        ("batch_size", Json::Num(batch_size as f64)),
        (
            "available_parallelism",
            Json::Num(std::thread::available_parallelism().map_or(1, |n| n.get()) as f64),
        ),
        ("smoke", Json::Num(f64::from(u8::from(smoke)))),
        ("peak_rss_bytes", Json::Num(peak_rss_bytes().unwrap_or(0) as f64)),
        ("rungs", Json::Arr(rungs)),
    ]);
    if let Err(e) = json::write_pretty(path, &report) {
        eprintln!("bench_serve: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");
    ledger.set_summary(obj(vec![
        ("out", Json::Str(path.to_string())),
        (
            "rungs",
            Json::Num(report.get("rungs").and_then(Json::as_arr).map_or(0, <[Json]>::len) as f64),
        ),
    ]));

    if smoke {
        let text = std::fs::read_to_string(path).expect("re-read artefact");
        let parsed = json::parse(&text).expect("artefact must parse");
        let n = parsed.get("rungs").and_then(Json::as_arr).map_or(0, <[Json]>::len);
        assert!(n > 0, "smoke run produced no rungs");
        println!("smoke OK: {n} rungs validated");
    }
    if failed {
        std::process::exit(1);
    }
}

//! Shared fixtures for the Criterion benches.
//!
//! The benchmark harness mirrors the evaluation harness: every paper table
//! and figure has a bench exercising the code that regenerates it (at a
//! bench-friendly scale), plus micro-benches for the hot substrates
//! (similarity functions, KD-tree, MinHash blocking, classifier training).

#![forbid(unsafe_code)]

use transer_common::DomainPair;
use transer_datagen::ScenarioPair;

/// Scale used by the experiment-level benches: large enough to be
/// representative, small enough for Criterion's repeated sampling.
pub const BENCH_SCALE: f64 = 0.05;

/// Deterministic seed for all bench fixtures.
pub const BENCH_SEED: u64 = 42;

/// The bibliographic transfer task at bench scale.
pub fn biblio_pair() -> DomainPair {
    ScenarioPair::Bibliographic
        .domain_pair(BENCH_SCALE, BENCH_SEED)
        .expect("bench workload generation")
}

/// The music transfer task at bench scale.
pub fn music_pair() -> DomainPair {
    ScenarioPair::Music.domain_pair(BENCH_SCALE, BENCH_SEED).expect("bench workload generation")
}

// Peak RSS moved into the run ledger (`transer_trace::ledger`), which
// every bench/eval bin already links; re-exported here for the bench
// bins' per-cell reporting (`bench_scale` runs every grid cell in a
// fresh child process precisely because `VmHWM` is per process).
pub use transer_trace::ledger::peak_rss_bytes;

#[cfg(test)]
mod tests {
    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_reads_a_positive_high_water_mark() {
        let rss = super::peak_rss_bytes().expect("VmHWM on linux");
        assert!(rss > 1024 * 1024, "peak RSS {rss} implausibly small");
    }
}

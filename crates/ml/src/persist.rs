//! Versioned on-disk persistence for trained models.
//!
//! A long-lived service must load a trained classifier once and serve from
//! it, not refit per process. [`PersistedModel`] wraps the three
//! serialisable classifier kinds — random forest, logistic regression and
//! decision tree (the kinds the TransER TCL phase emits) — with a
//! versioned JSON format built on `transer_trace::json`:
//!
//! ```json
//! { "schema_version": 1, "kind": "rf", "model": { ... } }
//! ```
//!
//! The parser is *strict* in the style of `trace_report --check`: an
//! unknown key anywhere in the document, a missing field or a
//! schema-version mismatch is a typed [`Error::Persist`], never silently
//! ignored — a forward-compatibility hazard caught at load time beats a
//! silently wrong model in production.
//!
//! # Bit-identical predictions
//! Floats are written with Rust's shortest-round-trip `Display` and read
//! back with `str::parse::<f64>`, which is exact for every finite value —
//! and every persisted value is finite by construction (fits reject
//! non-finite weights; leaf probabilities and thresholds come from finite
//! inputs). A `save → load → predict` round trip therefore reproduces the
//! in-memory predictions bit for bit; `tests/persist_roundtrip.rs`
//! property-tests this for all three kinds. 64-bit seeds exceed the 2^53
//! exact-integer range of a JSON number and are stored as hex strings.
//!
//! Only prediction state is persisted. Training-only state (rng streams,
//! pool overrides, tree engines) resets to defaults on load: predictions
//! are bit-identical, refitting a loaded model starts fresh.

use std::collections::BTreeMap;

use transer_common::{Error, Result};
use transer_trace::json::{self, obj, Json};

use crate::forest::{RandomForest, RandomForestConfig};
use crate::logistic::{LogisticRegression, LogisticRegressionConfig};
use crate::traits::{Classifier, ClassifierKind};
use crate::tree::{DecisionTree, DecisionTreeConfig, Node};

/// Schema version of the on-disk model format.
pub const MODEL_SCHEMA_VERSION: u64 = 1;

/// A trained model in one of the serialisable classifier kinds.
#[derive(Debug, Clone)]
pub enum PersistedModel {
    /// A random forest (`"kind": "rf"`).
    Forest(RandomForest),
    /// A logistic regression (`"kind": "logreg"`).
    Logistic(LogisticRegression),
    /// A decision tree (`"kind": "dtree"`).
    Tree(DecisionTree),
}

impl PersistedModel {
    /// The classifier kind of the wrapped model.
    pub fn kind(&self) -> ClassifierKind {
        match self {
            PersistedModel::Forest(_) => ClassifierKind::RandomForest,
            PersistedModel::Logistic(_) => ClassifierKind::LogisticRegression,
            PersistedModel::Tree(_) => ClassifierKind::DecisionTree,
        }
    }

    /// Borrow the wrapped model as a [`Classifier`].
    pub fn classifier(&self) -> &dyn Classifier {
        match self {
            PersistedModel::Forest(m) => m,
            PersistedModel::Logistic(m) => m,
            PersistedModel::Tree(m) => m,
        }
    }

    /// Unwrap into a boxed [`Classifier`].
    pub fn into_classifier(self) -> Box<dyn Classifier> {
        match self {
            PersistedModel::Forest(m) => Box::new(m),
            PersistedModel::Logistic(m) => Box::new(m),
            PersistedModel::Tree(m) => Box::new(m),
        }
    }

    /// Snapshot a trained classifier that only exists behind the trait
    /// object (the pipeline's TCL output). `None` for kinds without a
    /// persistence format (SVM, MLP, naive Bayes).
    pub fn from_classifier(clf: &dyn Classifier) -> Option<Self> {
        let any = clf.as_any();
        if let Some(m) = any.downcast_ref::<RandomForest>() {
            return Some(PersistedModel::Forest(m.clone()));
        }
        if let Some(m) = any.downcast_ref::<LogisticRegression>() {
            return Some(PersistedModel::Logistic(m.clone()));
        }
        any.downcast_ref::<DecisionTree>().map(|m| PersistedModel::Tree(m.clone()))
    }

    /// Serialise to the versioned JSON document format.
    pub fn to_json(&self) -> Json {
        let (kind, model) = match self {
            PersistedModel::Forest(m) => ("rf", forest_to_json(m)),
            PersistedModel::Logistic(m) => ("logreg", logistic_to_json(m)),
            PersistedModel::Tree(m) => ("dtree", tree_to_json(m)),
        };
        obj(vec![
            ("schema_version", Json::Num(MODEL_SCHEMA_VERSION as f64)),
            ("kind", Json::Str(kind.into())),
            ("model", model),
        ])
    }

    /// Rebuild a model from its [`PersistedModel::to_json`] document.
    ///
    /// # Errors
    /// [`Error::Persist`] on schema-version mismatch, an unknown `kind`,
    /// unknown keys, or any missing/malformed field.
    pub fn from_json(doc: &Json) -> Result<Self> {
        let top = strict_obj(doc, &["schema_version", "kind", "model"], "model")?;
        let version = num_field(top, "schema_version", "model")?;
        if version != MODEL_SCHEMA_VERSION as f64 {
            return Err(Error::Persist(format!(
                "model: unsupported schema_version {version} (expected {MODEL_SCHEMA_VERSION})"
            )));
        }
        let kind = top
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| Error::Persist("model: missing kind".into()))?;
        let model =
            top.get("model").ok_or_else(|| Error::Persist("model: missing model body".into()))?;
        match kind {
            "rf" => Ok(PersistedModel::Forest(forest_from_json(model)?)),
            "logreg" => Ok(PersistedModel::Logistic(logistic_from_json(model)?)),
            "dtree" => Ok(PersistedModel::Tree(tree_from_json(model)?)),
            other => Err(Error::Persist(format!("model: unknown kind {other:?}"))),
        }
    }

    /// Write the model to `path` as pretty-printed JSON.
    ///
    /// # Errors
    /// [`Error::Persist`] on I/O failure.
    pub fn save(&self, path: &str) -> Result<()> {
        json::write_pretty(path, &self.to_json())
            .map_err(|e| Error::Persist(format!("model: cannot write {path}: {e}")))
    }

    /// Load a model previously written by [`PersistedModel::save`].
    ///
    /// # Errors
    /// [`Error::Persist`] on I/O or parse failure — see
    /// [`PersistedModel::from_json`].
    pub fn load(path: &str) -> Result<Self> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| Error::Persist(format!("model: cannot read {path}: {e}")))?;
        let doc =
            json::parse(&text).map_err(|e| Error::Persist(format!("model: parse {path}: {e}")))?;
        PersistedModel::from_json(&doc)
    }
}

fn tree_config_to_json(config: &DecisionTreeConfig) -> Json {
    obj(vec![
        ("max_depth", Json::Num(config.max_depth as f64)),
        ("min_samples_split", Json::Num(config.min_samples_split as f64)),
        ("min_samples_leaf", Json::Num(config.min_samples_leaf as f64)),
        ("min_impurity_decrease", Json::Num(config.min_impurity_decrease)),
    ])
}

fn tree_config_from_json(doc: &Json) -> Result<DecisionTreeConfig> {
    let cfg = strict_obj(
        doc,
        &["max_depth", "min_samples_split", "min_samples_leaf", "min_impurity_decrease"],
        "tree config",
    )?;
    Ok(DecisionTreeConfig {
        max_depth: usize_field(cfg, "max_depth", "tree config")?,
        min_samples_split: usize_field(cfg, "min_samples_split", "tree config")?,
        min_samples_leaf: usize_field(cfg, "min_samples_leaf", "tree config")?,
        min_impurity_decrease: num_field(cfg, "min_impurity_decrease", "tree config")?,
    })
}

fn node_to_json(node: &Node) -> Json {
    match *node {
        Node::Leaf { p_match } => obj(vec![("leaf", Json::Num(p_match))]),
        Node::Split { feature, threshold, left, right } => obj(vec![
            ("feature", Json::Num(f64::from(feature))),
            ("threshold", Json::Num(threshold)),
            ("left", Json::Num(f64::from(left))),
            ("right", Json::Num(f64::from(right))),
        ]),
    }
}

fn node_from_json(doc: &Json) -> Result<Node> {
    let map = doc.as_obj().ok_or_else(|| Error::Persist("node: expected an object".into()))?;
    if map.contains_key("leaf") {
        let m = strict_obj(doc, &["leaf"], "leaf node")?;
        return Ok(Node::Leaf { p_match: num_field(m, "leaf", "leaf node")? });
    }
    let m = strict_obj(doc, &["feature", "threshold", "left", "right"], "split node")?;
    let feature = usize_field(m, "feature", "split node")?;
    let feature = u16::try_from(feature)
        .map_err(|_| Error::Persist(format!("split node: feature {feature} out of range")))?;
    Ok(Node::Split {
        feature,
        threshold: num_field(m, "threshold", "split node")?,
        left: u32_field(m, "left", "split node")?,
        right: u32_field(m, "right", "split node")?,
    })
}

fn tree_to_json(tree: &DecisionTree) -> Json {
    let (config, nodes, root) = tree.persist_parts();
    obj(vec![
        ("config", tree_config_to_json(config)),
        ("nodes", Json::Arr(nodes.iter().map(node_to_json).collect())),
        ("root", Json::Num(f64::from(root))),
    ])
}

fn tree_from_json(doc: &Json) -> Result<DecisionTree> {
    let m = strict_obj(doc, &["config", "nodes", "root"], "tree")?;
    let config = tree_config_from_json(
        m.get("config").ok_or_else(|| Error::Persist("tree: missing config".into()))?,
    )?;
    let nodes = m
        .get("nodes")
        .and_then(Json::as_arr)
        .ok_or_else(|| Error::Persist("tree: nodes must be an array".into()))?
        .iter()
        .map(node_from_json)
        .collect::<Result<Vec<Node>>>()?;
    let root = u32_field(m, "root", "tree")?;
    // Reject dangling child ids up front: a corrupt arena must fail the
    // load, not panic at predict time.
    let in_range = |id: u32| id != u32::MAX && (id as usize) < nodes.len();
    if (root != u32::MAX && !in_range(root)) || (root == u32::MAX && !nodes.is_empty()) {
        return Err(Error::Persist(format!("tree: root {root} out of range")));
    }
    for node in &nodes {
        if let Node::Split { left, right, .. } = *node {
            if !in_range(left) || !in_range(right) {
                return Err(Error::Persist("tree: split child out of range".into()));
            }
        }
    }
    Ok(DecisionTree::from_persist_parts(config, nodes, root))
}

fn forest_to_json(forest: &RandomForest) -> Json {
    let (config, seed, trees) = forest.persist_parts();
    obj(vec![
        (
            "config",
            obj(vec![
                ("n_trees", Json::Num(config.n_trees as f64)),
                ("max_features", config.max_features.map_or(Json::Null, |k| Json::Num(k as f64))),
                ("tree", tree_config_to_json(&config.tree)),
            ]),
        ),
        ("seed", Json::Str(format!("{seed:016x}"))),
        ("trees", Json::Arr(trees.iter().map(tree_to_json).collect())),
    ])
}

fn forest_from_json(doc: &Json) -> Result<RandomForest> {
    let m = strict_obj(doc, &["config", "seed", "trees"], "forest")?;
    let cfg_doc = m.get("config").ok_or_else(|| Error::Persist("forest: missing config".into()))?;
    let cfg = strict_obj(cfg_doc, &["n_trees", "max_features", "tree"], "forest config")?;
    let config = RandomForestConfig {
        n_trees: usize_field(cfg, "n_trees", "forest config")?,
        max_features: match cfg.get("max_features") {
            None | Some(Json::Null) => None,
            Some(_) => Some(usize_field(cfg, "max_features", "forest config")?),
        },
        tree: tree_config_from_json(
            cfg.get("tree").ok_or_else(|| Error::Persist("forest config: missing tree".into()))?,
        )?,
    };
    let seed = hex_field(m, "seed", "forest")?;
    let trees = m
        .get("trees")
        .and_then(Json::as_arr)
        .ok_or_else(|| Error::Persist("forest: trees must be an array".into()))?
        .iter()
        .map(tree_from_json)
        .collect::<Result<Vec<DecisionTree>>>()?;
    Ok(RandomForest::from_persist_parts(config, seed, trees))
}

fn logistic_to_json(model: &LogisticRegression) -> Json {
    let (config, weights, bias, fitted) = model.persist_parts();
    obj(vec![
        (
            "config",
            obj(vec![
                ("epochs", Json::Num(config.epochs as f64)),
                ("learning_rate", Json::Num(config.learning_rate)),
                ("decay", Json::Num(config.decay)),
                ("l2", Json::Num(config.l2)),
            ]),
        ),
        ("weights", Json::Arr(weights.iter().map(|&w| Json::Num(w)).collect())),
        ("bias", Json::Num(bias)),
        ("fitted", Json::Bool(fitted)),
    ])
}

fn logistic_from_json(doc: &Json) -> Result<LogisticRegression> {
    let m = strict_obj(doc, &["config", "weights", "bias", "fitted"], "logistic")?;
    let cfg_doc =
        m.get("config").ok_or_else(|| Error::Persist("logistic: missing config".into()))?;
    let cfg = strict_obj(cfg_doc, &["epochs", "learning_rate", "decay", "l2"], "logistic config")?;
    let config = LogisticRegressionConfig {
        epochs: usize_field(cfg, "epochs", "logistic config")?,
        learning_rate: num_field(cfg, "learning_rate", "logistic config")?,
        decay: num_field(cfg, "decay", "logistic config")?,
        l2: num_field(cfg, "l2", "logistic config")?,
    };
    let weights = m
        .get("weights")
        .and_then(Json::as_arr)
        .ok_or_else(|| Error::Persist("logistic: weights must be an array".into()))?
        .iter()
        .map(|j| {
            j.as_num().ok_or_else(|| Error::Persist("logistic: weights must be numbers".into()))
        })
        .collect::<Result<Vec<f64>>>()?;
    let bias = num_field(m, "bias", "logistic")?;
    let fitted = match m.get("fitted") {
        Some(Json::Bool(b)) => *b,
        _ => return Err(Error::Persist("logistic: fitted must be a boolean".into())),
    };
    Ok(LogisticRegression::from_persist_parts(config, weights, bias, fitted))
}

/// Strict-parse primitive: `doc` must be an object and every key must be in
/// `allowed` — unknown keys are rejected, like `trace_report --check`.
fn strict_obj<'a>(
    doc: &'a Json,
    allowed: &[&str],
    ctx: &str,
) -> Result<&'a BTreeMap<String, Json>> {
    let map =
        doc.as_obj().ok_or_else(|| Error::Persist(format!("{ctx}: expected a JSON object")))?;
    for key in map.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(Error::Persist(format!("{ctx}: unknown key {key:?}")));
        }
    }
    Ok(map)
}

fn num_field(map: &BTreeMap<String, Json>, key: &str, ctx: &str) -> Result<f64> {
    map.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| Error::Persist(format!("{ctx}: missing numeric field {key:?}")))
}

fn usize_field(map: &BTreeMap<String, Json>, key: &str, ctx: &str) -> Result<usize> {
    let n = num_field(map, key, ctx)?;
    if n < 0.0 || n.fract() != 0.0 || n > 2f64.powi(53) {
        return Err(Error::Persist(format!("{ctx}: field {key:?} is not an exact integer: {n}")));
    }
    Ok(n as usize)
}

fn u32_field(map: &BTreeMap<String, Json>, key: &str, ctx: &str) -> Result<u32> {
    let n = usize_field(map, key, ctx)?;
    u32::try_from(n).map_err(|_| Error::Persist(format!("{ctx}: field {key:?} exceeds u32: {n}")))
}

fn hex_field(map: &BTreeMap<String, Json>, key: &str, ctx: &str) -> Result<u64> {
    map.get(key)
        .and_then(Json::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| Error::Persist(format!("{ctx}: field {key:?} must be a hex string")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use transer_common::{FeatureMatrix, Label};

    fn training_set() -> (FeatureMatrix, Vec<Label>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let t = f64::from(i) / 60.0;
            rows.push(vec![0.8 + 0.2 * t, 0.9 - 0.1 * t, t]);
            labels.push(Label::Match);
            rows.push(vec![0.2 * t, 0.3 - 0.2 * t, 1.0 - t]);
            labels.push(Label::NonMatch);
        }
        (FeatureMatrix::from_vecs(&rows).expect("rectangular"), labels)
    }

    #[test]
    fn unknown_key_and_wrong_version_are_rejected() {
        let model = PersistedModel::Logistic(LogisticRegression::default());
        let mut doc = model.to_json();
        if let Json::Obj(map) = &mut doc {
            map.insert("extra".into(), Json::Num(1.0));
        }
        assert!(matches!(PersistedModel::from_json(&doc), Err(Error::Persist(_))));
        let mut doc = model.to_json();
        if let Json::Obj(map) = &mut doc {
            map.insert("schema_version".into(), Json::Num(2.0));
        }
        let err = PersistedModel::from_json(&doc).expect_err("wrong version");
        assert!(err.to_string().contains("schema_version"), "{err}");
    }

    #[test]
    fn corrupt_tree_arena_fails_the_load_not_predict() {
        let (x, y) = training_set();
        let mut tree = DecisionTree::default();
        tree.fit(&x, &y).expect("fit");
        let mut doc = PersistedModel::Tree(tree).to_json();
        if let Json::Obj(top) = &mut doc {
            if let Some(Json::Obj(model)) = top.get_mut("model") {
                model.insert("root".into(), Json::Num(9999.0));
            }
        }
        let err = PersistedModel::from_json(&doc).expect_err("dangling root");
        assert!(err.to_string().contains("root"), "{err}");
    }

    #[test]
    fn unfitted_models_round_trip() {
        for model in [
            PersistedModel::Logistic(LogisticRegression::default()),
            PersistedModel::Tree(DecisionTree::default()),
            PersistedModel::Forest(RandomForest::with_seed(3)),
        ] {
            let text = model.to_json().to_pretty();
            let doc = json::parse(&text).expect("valid json");
            let loaded = PersistedModel::from_json(&doc).expect("round trip");
            let x = FeatureMatrix::from_vecs(&[vec![0.5, 0.5, 0.5]]).expect("rectangular");
            assert_eq!(loaded.classifier().predict_proba(&x), vec![0.5], "unfitted prior");
        }
    }

    #[test]
    fn from_classifier_covers_the_persistable_kinds() {
        for kind in [
            ClassifierKind::RandomForest,
            ClassifierKind::LogisticRegression,
            ClassifierKind::DecisionTree,
        ] {
            let clf = kind.build(1);
            let model = PersistedModel::from_classifier(clf.as_ref()).expect("persistable");
            assert_eq!(model.kind(), kind);
        }
        assert!(PersistedModel::from_classifier(ClassifierKind::Svm.build(1).as_ref()).is_none());
        assert!(PersistedModel::from_classifier(ClassifierKind::Mlp.build(1).as_ref()).is_none());
    }
}

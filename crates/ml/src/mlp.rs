//! A small feed-forward neural network (multi-layer perceptron) for binary
//! classification, trained with SGD on the cross-entropy loss.
//!
//! This exists to power the deep-learning baselines (DTAL*, DR): the paper
//! contrasts TransER's traditional classifiers with deep models, so the
//! reproduction needs a real — if compact — neural network, not a stub.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use transer_common::{Error, FeatureMatrix, Label, Result};

use crate::logistic::sigmoid;
use crate::traits::{check_training_input, Classifier};

/// One fully connected layer with ReLU or identity activation.
#[derive(Debug, Clone)]
pub(crate) struct DenseLayer {
    /// Row-major `out × in` weight matrix.
    pub w: Vec<f64>,
    pub b: Vec<f64>,
    pub inputs: usize,
    pub outputs: usize,
    pub relu: bool,
}

impl DenseLayer {
    pub fn new(inputs: usize, outputs: usize, relu: bool, rng: &mut StdRng) -> Self {
        // He-style initialisation scaled to the fan-in.
        let scale = (2.0 / inputs.max(1) as f64).sqrt();
        let w = (0..inputs * outputs).map(|_| rng.random_range(-scale..scale)).collect();
        DenseLayer { w, b: vec![0.0; outputs], inputs, outputs, relu }
    }

    /// Forward pass; returns the post-activation output.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.inputs);
        (0..self.outputs)
            .map(|o| {
                let z = self.b[o]
                    + self.w[o * self.inputs..(o + 1) * self.inputs]
                        .iter()
                        .zip(x)
                        .map(|(w, x)| w * x)
                        .sum::<f64>();
                if self.relu {
                    z.max(0.0)
                } else {
                    z
                }
            })
            .collect()
    }

    /// Backward pass: given the layer input, its forward output and the
    /// gradient w.r.t. that output, apply an SGD step with rate `lr` and
    /// return the gradient w.r.t. the input.
    pub fn backward(&mut self, x: &[f64], out: &[f64], grad_out: &[f64], lr: f64) -> Vec<f64> {
        let mut grad_in = vec![0.0; self.inputs];
        for o in 0..self.outputs {
            // ReLU gate: zero gradient where the unit was inactive.
            let g = if self.relu && out[o] <= 0.0 { 0.0 } else { grad_out[o] };
            if g == 0.0 {
                continue;
            }
            let row = &mut self.w[o * self.inputs..(o + 1) * self.inputs];
            for (i, (w, &xv)) in row.iter_mut().zip(x).enumerate() {
                grad_in[i] += *w * g;
                *w -= lr * g * xv;
            }
            self.b[o] -= lr * g;
        }
        grad_in
    }
}

/// Hyper-parameters for [`Mlp`].
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Initial learning rate (decayed per epoch).
    pub learning_rate: f64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig { hidden: vec![16, 8], epochs: 40, learning_rate: 0.05 }
    }
}

/// Feed-forward binary classifier: ReLU hidden layers, sigmoid output.
#[derive(Debug, Clone)]
pub struct Mlp {
    config: MlpConfig,
    seed: u64,
    layers: Vec<DenseLayer>,
    fitted: bool,
}

impl Mlp {
    /// Create with explicit hyper-parameters and RNG seed.
    pub fn new(config: MlpConfig, seed: u64) -> Self {
        Mlp { config, seed, layers: Vec::new(), fitted: false }
    }

    /// Default configuration with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        Mlp::new(MlpConfig::default(), seed)
    }

    fn forward_all(&self, x: &[f64]) -> Vec<Vec<f64>> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        let mut current = x.to_vec();
        for layer in &self.layers {
            let next = layer.forward(&current);
            acts.push(std::mem::replace(&mut current, next));
        }
        acts.push(current);
        acts
    }

    /// The sigmoid output of the final layer; 0.5 when the network has no
    /// layers (unfitted), keeping the path panic-free.
    fn output_of(acts: &[Vec<f64>]) -> f64 {
        sigmoid(acts.last().and_then(|a| a.first()).copied().unwrap_or(0.0))
    }

    fn proba_one(&self, x: &[f64]) -> f64 {
        Mlp::output_of(&self.forward_all(x))
    }
}

impl Classifier for Mlp {
    fn name(&self) -> &'static str {
        "mlp"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn fit_weighted(
        &mut self,
        x: &FeatureMatrix,
        y: &[Label],
        weights: Option<&[f64]>,
    ) -> Result<()> {
        check_training_input(x, y, weights)?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut dims = vec![x.cols()];
        dims.extend_from_slice(&self.config.hidden);
        dims.push(1);
        self.layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, d)| DenseLayer::new(d[0], d[1], i + 2 < dims.len(), &mut rng))
            .collect();

        let mut order: Vec<usize> = (0..x.rows()).collect();
        for epoch in 0..self.config.epochs {
            let lr = self.config.learning_rate / (1.0 + 0.05 * epoch as f64);
            order.shuffle(&mut rng);
            for &i in &order {
                let acts = self.forward_all(x.row(i));
                let p = Mlp::output_of(&acts);
                let wi = weights.map_or(1.0, |w| w[i]);
                // dL/dz for sigmoid + cross-entropy.
                let mut grad = vec![(p - y[i].as_f64()) * wi];
                for (l, layer) in self.layers.iter_mut().enumerate().rev() {
                    grad = layer.backward(&acts[l], &acts[l + 1], &grad, lr);
                }
            }
        }
        if self.layers.iter().any(|l| l.w.iter().any(|w| !w.is_finite())) {
            return Err(Error::TrainingFailed("MLP diverged".into()));
        }
        self.fitted = true;
        Ok(())
    }

    fn predict_proba(&self, x: &FeatureMatrix) -> Vec<f64> {
        if !self.fitted {
            return vec![0.5; x.rows()];
        }
        x.iter_rows().map(|row| self.proba_one(row)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (FeatureMatrix, Vec<Label>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for &(a, b, m) in
            &[(0.1, 0.1, false), (0.9, 0.9, false), (0.1, 0.9, true), (0.9, 0.1, true)]
        {
            for k in 0..10 {
                let j = k as f64 * 0.005;
                rows.push(vec![a + j, b - j]);
                labels.push(Label::from_bool(m));
            }
        }
        (FeatureMatrix::from_vecs(&rows).unwrap(), labels)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let mut mlp = Mlp::new(MlpConfig { hidden: vec![16], epochs: 300, learning_rate: 0.3 }, 7);
        mlp.fit(&x, &y).unwrap();
        let acc =
            mlp.predict(&x).iter().zip(&y).filter(|(a, b)| a == b).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn probabilities_bounded() {
        let (x, y) = xor_data();
        let mut mlp = Mlp::with_seed(1);
        mlp.fit(&x, &y).unwrap();
        for p in mlp.predict_proba(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = xor_data();
        let mut a = Mlp::with_seed(3);
        let mut b = Mlp::with_seed(3);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    fn layer_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = DenseLayer::new(3, 2, true, &mut rng);
        let out = layer.forward(&[0.1, 0.2, 0.3]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|&v| v >= 0.0), "ReLU output must be non-negative");
    }

    #[test]
    fn rejects_empty() {
        let mut mlp = Mlp::with_seed(0);
        assert!(mlp.fit(&FeatureMatrix::empty(2), &[]).is_err());
    }
}

//! Gaussian naive Bayes — a fifth traditional classifier beyond the
//! paper's averaged set, useful as a fast probabilistic reference and for
//! ablation experiments on the classifier family.

use transer_common::{Error, FeatureMatrix, Label, Result};

use crate::traits::{check_training_input, Classifier};

/// Per-class feature means and variances under the naive independence
/// assumption, with Laplace-style variance smoothing.
#[derive(Debug, Clone, Default)]
pub struct GaussianNaiveBayes {
    /// `[non-match, match]` per-feature means.
    means: [Vec<f64>; 2],
    /// `[non-match, match]` per-feature variances (smoothed).
    vars: [Vec<f64>; 2],
    /// Log class priors `[non-match, match]`.
    log_priors: [f64; 2],
    fitted: bool,
}

/// Variance floor: features in [0,1] can be constant within a class.
const VAR_FLOOR: f64 = 1e-6;

impl GaussianNaiveBayes {
    /// Create an unfitted model.
    pub fn new() -> Self {
        Self::default()
    }

    fn log_likelihood(&self, row: &[f64], class: usize) -> f64 {
        let mut ll = self.log_priors[class];
        for ((&x, &mean), &var) in row.iter().zip(&self.means[class]).zip(&self.vars[class]) {
            let d = x - mean;
            ll += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + d * d / var);
        }
        ll
    }
}

impl Classifier for GaussianNaiveBayes {
    fn name(&self) -> &'static str {
        "gnb"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn fit_weighted(
        &mut self,
        x: &FeatureMatrix,
        y: &[Label],
        weights: Option<&[f64]>,
    ) -> Result<()> {
        check_training_input(x, y, weights)?;
        let m = x.cols();
        let mut sums = [vec![0.0; m], vec![0.0; m]];
        let mut sq_sums = [vec![0.0; m], vec![0.0; m]];
        let mut class_w = [0.0f64; 2];
        for (i, row) in x.iter_rows().enumerate() {
            let wi = weights.map_or(1.0, |w| w[i]);
            let c = usize::from(y[i].is_match());
            class_w[c] += wi;
            for (f, &v) in row.iter().enumerate() {
                sums[c][f] += wi * v;
                sq_sums[c][f] += wi * v * v;
            }
        }
        if class_w[0] <= 0.0 || class_w[1] <= 0.0 {
            return Err(Error::TrainingFailed(
                "Gaussian naive Bayes needs weighted mass in both classes".into(),
            ));
        }
        let total = class_w[0] + class_w[1];
        for c in 0..2 {
            self.means[c] = sums[c].iter().map(|s| s / class_w[c]).collect();
            self.vars[c] = sq_sums[c]
                .iter()
                .zip(&self.means[c])
                .map(|(&sq, &mean)| (sq / class_w[c] - mean * mean).max(VAR_FLOOR))
                .collect();
            self.log_priors[c] = (class_w[c] / total).ln();
        }
        self.fitted = true;
        Ok(())
    }

    fn predict_proba(&self, x: &FeatureMatrix) -> Vec<f64> {
        if !self.fitted {
            return vec![0.5; x.rows()]; // unfitted: uninformative prior
        }
        x.iter_rows()
            .map(|row| {
                let ll0 = self.log_likelihood(row, 0);
                let ll1 = self.log_likelihood(row, 1);
                // P(match) via the log-sum-exp-stable ratio.
                let max = ll0.max(ll1);
                let e0 = (ll0 - max).exp();
                let e1 = (ll1 - max).exp();
                e1 / (e0 + e1)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (FeatureMatrix, Vec<Label>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..25 {
            let j = (i % 5) as f64 * 0.02;
            rows.push(vec![0.85 + j, 0.8 - j]);
            y.push(Label::Match);
            rows.push(vec![0.15 - j / 2.0, 0.2 + j]);
            y.push(Label::NonMatch);
        }
        (FeatureMatrix::from_vecs(&rows).unwrap(), y)
    }

    #[test]
    fn separates_blobs() {
        let (x, y) = blobs();
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&x, &y).unwrap();
        assert_eq!(nb.predict(&x), y);
        for p in nb.predict_proba(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn probabilities_reflect_distance_to_means() {
        let (x, y) = blobs();
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&x, &y).unwrap();
        let probe =
            FeatureMatrix::from_vecs(&[vec![0.85, 0.8], vec![0.5, 0.5], vec![0.15, 0.2]]).unwrap();
        let p = nb.predict_proba(&probe);
        assert!(p[0] > 0.95);
        assert!(p[2] < 0.05);
        // Saturation can flatten the extremes in f64; the ordering only
        // needs to be non-strict at the saturated ends.
        assert!(p[0] >= p[1] && p[1] >= p[2], "{p:?}");
    }

    #[test]
    fn weights_shift_the_priors() {
        // Same ambiguous feature, weights decide the prior-dominated call.
        let x = FeatureMatrix::from_vecs(&[vec![0.5], vec![0.5]]).unwrap();
        let y = vec![Label::Match, Label::NonMatch];
        let mut heavy = GaussianNaiveBayes::new();
        heavy.fit_weighted(&x, &y, Some(&[9.0, 1.0])).unwrap();
        let q = FeatureMatrix::from_vecs(&[vec![0.5]]).unwrap();
        assert!(heavy.predict_proba(&q)[0] > 0.5);
    }

    #[test]
    fn single_class_rejected() {
        let x = FeatureMatrix::from_vecs(&[vec![0.5], vec![0.6]]).unwrap();
        let mut nb = GaussianNaiveBayes::new();
        assert!(nb.fit(&x, &[Label::Match, Label::Match]).is_err());
    }

    #[test]
    fn constant_features_survive_via_variance_floor() {
        let x = FeatureMatrix::from_vecs(&[vec![1.0, 0.3], vec![1.0, 0.9]]).unwrap();
        let y = vec![Label::NonMatch, Label::Match];
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&x, &y).unwrap();
        for p in nb.predict_proba(&x) {
            assert!(p.is_finite());
        }
    }
}

//! Linear support vector machine trained with Pegasos-style SGD on the
//! hinge loss, followed by Platt scaling so the decision values become
//! calibrated match probabilities.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use transer_common::{Error, FeatureMatrix, Label, Result};

use crate::logistic::sigmoid;
use crate::traits::{check_training_input, Classifier};

/// Hyper-parameters for [`LinearSvm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearSvmConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Regularisation strength λ of the Pegasos objective.
    pub lambda: f64,
    /// Iterations of Newton's method for the Platt sigmoid fit.
    pub platt_iterations: usize,
}

impl Default for LinearSvmConfig {
    fn default() -> Self {
        LinearSvmConfig { epochs: 60, lambda: 1e-3, platt_iterations: 50 }
    }
}

/// Linear SVM `f(x) = w·x + b` with Platt-scaled probabilities
/// `P(match|x) = σ(A·f(x) + B)`.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    config: LinearSvmConfig,
    seed: u64,
    weights: Vec<f64>,
    bias: f64,
    platt_a: f64,
    platt_b: f64,
    fitted: bool,
}

impl LinearSvm {
    /// Create with explicit hyper-parameters and RNG seed (SGD shuffling).
    pub fn new(config: LinearSvmConfig, seed: u64) -> Self {
        LinearSvm {
            config,
            seed,
            weights: Vec::new(),
            bias: 0.0,
            platt_a: -1.0,
            platt_b: 0.0,
            fitted: false,
        }
    }

    /// Default configuration with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        LinearSvm::new(LinearSvmConfig::default(), seed)
    }

    /// Raw (uncalibrated) decision value for one row.
    pub fn decision_value(&self, row: &[f64]) -> f64 {
        self.bias + self.weights.iter().zip(row).map(|(w, x)| w * x).sum::<f64>()
    }

    /// Fit the Platt sigmoid `σ(A·f + B)` to decision values and targets by
    /// Newton iterations on the cross-entropy (Platt 1999, with the usual
    /// smoothed targets).
    fn fit_platt(&mut self, decisions: &[f64], y: &[Label], w: &[f64]) {
        let n_pos: f64 = y.iter().zip(w).filter(|(l, _)| l.is_match()).map(|(_, &wi)| wi).sum();
        let n_neg: f64 = y.iter().zip(w).filter(|(l, _)| !l.is_match()).map(|(_, &wi)| wi).sum();
        let t_pos = (n_pos + 1.0) / (n_pos + 2.0);
        let t_neg = 1.0 / (n_neg + 2.0);
        let targets: Vec<f64> =
            y.iter().map(|l| if l.is_match() { t_pos } else { t_neg }).collect();

        // Platt's recommended initialisation: neutral slope, prior-ratio
        // intercept. Starting at a fixed negative slope can strand Newton
        // in a saturated region with a vanishing Hessian.
        let mut a = 0.0;
        let mut b = ((n_neg + 1.0) / (n_pos + 1.0)).ln();
        for _ in 0..self.config.platt_iterations {
            let mut g_a = 0.0;
            let mut g_b = 0.0;
            let mut h_aa = 1e-12;
            let mut h_ab = 0.0;
            let mut h_bb = 1e-12;
            for ((&f, &t), &wi) in decisions.iter().zip(&targets).zip(w) {
                let p = sigmoid(a * f + b);
                let d = wi * (p - t);
                g_a += d * f;
                g_b += d;
                let s = wi * p * (1.0 - p);
                h_aa += s * f * f;
                h_ab += s * f;
                h_bb += s;
            }
            // Solve the 2x2 Newton system.
            let det = h_aa * h_bb - h_ab * h_ab;
            if det.abs() < 1e-18 {
                break;
            }
            // Damped Newton: clip the step so saturated regions (tiny
            // Hessian) cannot catapult the parameters away.
            let da = ((h_bb * g_a - h_ab * g_b) / det).clamp(-5.0, 5.0);
            let db = ((h_aa * g_b - h_ab * g_a) / det).clamp(-5.0, 5.0);
            a -= da;
            b -= db;
            if da.abs() < 1e-10 && db.abs() < 1e-10 {
                break;
            }
        }
        self.platt_a = a;
        self.platt_b = b;
    }
}

impl Classifier for LinearSvm {
    fn name(&self) -> &'static str {
        "svm"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn fit_weighted(
        &mut self,
        x: &FeatureMatrix,
        y: &[Label],
        weights: Option<&[f64]>,
    ) -> Result<()> {
        check_training_input(x, y, weights)?;
        let n = x.rows();
        let m = x.cols();
        // Balanced class weighting (as sklearn's `class_weight="balanced"`):
        // without it Pegasos collapses to the majority class on the small,
        // heavily imbalanced samples ER produces.
        let n_pos = y.iter().filter(|l| l.is_match()).count().max(1);
        let n_neg = (n - n_pos.min(n)).max(1);
        let w_sample: Vec<f64> = (0..n)
            .map(|i| {
                let base = weights.map_or(1.0, |w| w[i]);
                let class = if y[i].is_match() { n_pos } else { n_neg };
                base * n as f64 / (2.0 * class as f64)
            })
            .collect();
        let mean_w = w_sample.iter().sum::<f64>() / n as f64;
        if mean_w <= 0.0 {
            return Err(Error::TrainingFailed("all sample weights are zero".into()));
        }

        self.weights = vec![0.0; m];
        self.bias = 0.0;
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Offsetting the Pegasos step counter tames the enormous first
        // steps (eta = 1/(lambda*t) explodes for small t), which otherwise
        // park the bias so far out that small samples never recover.
        let t0 = (5 * n) as u64;
        let mut t: u64 = t0;
        for _ in 0..self.config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                t += 1;
                let eta = 1.0 / (self.config.lambda * t as f64);
                let row = x.row(i);
                let yi = if y[i].is_match() { 1.0 } else { -1.0 };
                let margin = yi * self.decision_value(row);
                // w <- (1 - eta*lambda) w  [+ eta*y*x when the hinge is active]
                let shrink = 1.0 - eta * self.config.lambda;
                for wv in &mut self.weights {
                    *wv *= shrink;
                }
                if margin < 1.0 {
                    let step = eta * yi * w_sample[i] / mean_w;
                    for (wv, &xv) in self.weights.iter_mut().zip(row) {
                        *wv += step * xv;
                    }
                    self.bias += step;
                }
            }
        }
        if self.weights.iter().any(|w| !w.is_finite()) || !self.bias.is_finite() {
            return Err(Error::TrainingFailed("SVM diverged".into()));
        }

        let decisions: Vec<f64> = x.iter_rows().map(|r| self.decision_value(r)).collect();
        self.fit_platt(&decisions, y, &w_sample);
        self.fitted = true;
        Ok(())
    }

    fn predict_proba(&self, x: &FeatureMatrix) -> Vec<f64> {
        if !self.fitted {
            return vec![0.5; x.rows()]; // unfitted: uninformative prior
        }
        x.iter_rows()
            .map(|row| sigmoid(self.platt_a * self.decision_value(row) + self.platt_b))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    fn blobs(seed: u64, n: usize) -> (FeatureMatrix, Vec<Label>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let j: f64 = rng.random_range(-0.1..0.1);
            rows.push(vec![0.85 + j, 0.9 + j / 2.0]);
            labels.push(Label::Match);
            rows.push(vec![0.15 - j, 0.2 + j]);
            labels.push(Label::NonMatch);
        }
        (FeatureMatrix::from_vecs(&rows).unwrap(), labels)
    }

    #[test]
    fn separates_blobs() {
        let (x, y) = blobs(11, 50);
        let mut svm = LinearSvm::with_seed(3);
        svm.fit(&x, &y).unwrap();
        assert_eq!(svm.predict(&x), y);
    }

    #[test]
    fn platt_probabilities_are_calibrated_ordering() {
        let (x, y) = blobs(2, 60);
        let mut svm = LinearSvm::with_seed(5);
        svm.fit(&x, &y).unwrap();
        let hi = svm.predict_proba(&FeatureMatrix::from_vecs(&[vec![0.95, 0.95]]).unwrap())[0];
        let mid = svm.predict_proba(&FeatureMatrix::from_vecs(&[vec![0.5, 0.55]]).unwrap())[0];
        let lo = svm.predict_proba(&FeatureMatrix::from_vecs(&[vec![0.05, 0.1]]).unwrap())[0];
        assert!(hi > 0.9, "{hi}");
        assert!(lo < 0.1, "{lo}");
        // Monotone in the decision value (non-strict: the Platt sigmoid can
        // saturate to exactly 0/1 in f64 for well-separated blobs).
        assert!(hi >= mid && mid >= lo);
    }

    #[test]
    fn probabilities_bounded() {
        let (x, y) = blobs(8, 40);
        let mut svm = LinearSvm::with_seed(1);
        svm.fit(&x, &y).unwrap();
        for p in svm.predict_proba(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = blobs(4, 30);
        let mut a = LinearSvm::with_seed(7);
        let mut b = LinearSvm::with_seed(7);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    fn weighted_fit_shifts_boundary() {
        // A contested point at 0.5: upweighting its (match) label must
        // raise the predicted match probability there relative to
        // downweighting it.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..6 {
            rows.push(vec![0.38 + i as f64 * 0.005]);
            y.push(Label::NonMatch);
            rows.push(vec![0.62 - i as f64 * 0.005]);
            y.push(Label::Match);
        }
        rows.push(vec![0.5]);
        y.push(Label::Match);
        let x = FeatureMatrix::from_vecs(&rows).unwrap();
        let mut weights = vec![1.0; y.len()];
        let q = FeatureMatrix::from_vecs(&[vec![0.5]]).unwrap();

        *weights.last_mut().unwrap() = 30.0;
        let mut heavy = LinearSvm::with_seed(0);
        heavy.fit_weighted(&x, &y, Some(&weights)).unwrap();

        *weights.last_mut().unwrap() = 0.1;
        let mut light = LinearSvm::with_seed(0);
        light.fit_weighted(&x, &y, Some(&weights)).unwrap();

        assert!(
            heavy.predict_proba(&q)[0] > light.predict_proba(&q)[0],
            "upweighting the contested match must raise its probability"
        );
    }

    #[test]
    fn rejects_empty() {
        let mut svm = LinearSvm::with_seed(0);
        assert!(svm.fit(&FeatureMatrix::empty(2), &[]).is_err());
    }
}

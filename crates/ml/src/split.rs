//! Split-search machinery shared by both decision-tree training engines.
//!
//! The reference engine ([`crate::DecisionTree`] with
//! [`TreeEngine::Reference`]) re-sorts each candidate feature column at
//! every node; the presorted engine sorts each column once per tree and
//! maintains the order by stable partition. Both funnel every impurity
//! computation through this module — the *same* floating-point operations
//! in the *same* order — which is what makes the two engines bit-identical
//! (same splits, same thresholds, same leaf probabilities) rather than
//! merely approximately equal.
//!
//! # Ordering contract
//!
//! Columns are scanned in `(value, row)` order under [`feature_cmp`]: a
//! NaN-safe total order (`f64::total_cmp` on non-NaN values, every NaN
//! equal to every other NaN and greater than everything else) with ties
//! broken by ascending row position. The order — and therefore the
//! weighted prefix sums accumulated along it — depends only on the data,
//! never on the input permutation the sort started from. The seed
//! comparator (`partial_cmp(..).unwrap_or(Equal)` under an unstable sort)
//! broke both properties as soon as a NaN appeared.

use std::cmp::Ordering;
use std::sync::OnceLock;

use crate::tree::DecisionTreeConfig;

/// Environment variable selecting the process-wide tree engine.
pub const TREE_ENGINE_ENV: &str = transer_common::env::TREE_ENGINE;

/// Which decision-tree training engine to use. Both produce bit-identical
/// trees; the choice affects training wall time only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeEngine {
    /// Sort each feature column once per tree and grow by stable
    /// partition — no per-node sorting. The default.
    Presorted,
    /// Re-sort every candidate feature column at every node. The pinned
    /// reference implementation the presorted engine is tested against.
    Reference,
}

impl TreeEngine {
    /// Parse a recognised `TRANSER_TREE_ENGINE` value; `None` otherwise.
    fn parse_known(s: &str) -> Option<TreeEngine> {
        match s.trim().to_ascii_lowercase().as_str() {
            "reference" | "ref" | "per-node-sort" => Some(TreeEngine::Reference),
            "presorted" | "pre-sorted" | "" => Some(TreeEngine::Presorted),
            _ => None,
        }
    }

    /// Parse a `TRANSER_TREE_ENGINE`-style value. Unrecognised or empty
    /// values fall back to [`TreeEngine::Presorted`].
    pub fn parse(s: &str) -> TreeEngine {
        TreeEngine::parse_known(s).unwrap_or(TreeEngine::Presorted)
    }

    /// The process-wide engine from the `TRANSER_TREE_ENGINE` environment
    /// variable, read once (mirroring `TRANSER_THREADS` and
    /// `TRANSER_KNN_INDEX`); unset means [`TreeEngine::Presorted`],
    /// unrecognised warns through the trace layer and falls back to
    /// [`TreeEngine::Presorted`].
    pub fn from_env() -> TreeEngine {
        static KIND: OnceLock<TreeEngine> = OnceLock::new();
        *KIND.get_or_init(|| {
            transer_common::env::parsed_with(
                TREE_ENGINE_ENV,
                TreeEngine::parse_known,
                "one of presorted/reference",
                "presorted",
            )
            .unwrap_or(TreeEngine::Presorted)
        })
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            TreeEngine::Presorted => "presorted",
            TreeEngine::Reference => "reference",
        }
    }
}

/// Fuzz for comparing impurity decreases: decreases within this distance
/// count as equal and fall through to the balance tie-break.
pub(crate) const DECREASE_EPS: f64 = 1e-12;

/// NaN-safe total order on feature values: non-NaN values by
/// [`f64::total_cmp`], every NaN equal to every other NaN (payload and
/// sign ignored) and greater than all non-NaN values. Keeping the NaN
/// class maximal means NaN rows always sit above every valid threshold,
/// consistent with the `value <= threshold` routing (false for NaN) used
/// when partitioning and predicting.
#[inline]
pub(crate) fn feature_cmp(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (false, false) => a.total_cmp(&b),
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
    }
}

/// Weighted Gini impurity of a node with match probability `p`.
#[inline]
pub(crate) fn gini(p: f64) -> f64 {
    2.0 * p * (1.0 - p)
}

/// The best split found on one feature column.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SplitCandidate {
    /// Split threshold: rows with `value <= threshold` go left.
    pub threshold: f64,
    /// Weighted impurity decrease of the split.
    pub decrease: f64,
    /// `min(left_n, right_n)` — the balance tie-break. It matters for
    /// XOR-like structure where every root split has zero gain: a balanced
    /// zero-gain split lets the children separate the classes, while a
    /// degenerate one recurses uselessly.
    pub balance: usize,
    /// Number of rows routed left by `threshold` — the boundary position
    /// of the winning scan. Valid boundaries sit between IEEE-distinct
    /// values, so the `value <= threshold` partition sends exactly the
    /// scanned prefix left; the presorted engine uses this to seed its
    /// partition cursors without a counting pass.
    pub n_left: usize,
}

/// Does a candidate with `(decrease, balance)` beat the incumbent?
/// Primarily the largest impurity decrease; among (near-)equal decreases,
/// the most balanced split.
#[inline]
pub(crate) fn improves(decrease: f64, balance: usize, incumbent: Option<(f64, usize)>) -> bool {
    match incumbent {
        None => true,
        Some((d, bal)) => {
            decrease > d + DECREASE_EPS || ((decrease - d).abs() <= DECREASE_EPS && balance > bal)
        }
    }
}

/// Scan one feature column for its best split.
///
/// `entry(k)` must return the `(value, weight, is_match)` triple of the
/// k-th entry of the column *in `(value, row)` sorted order* (see the
/// module docs); `n` is the column length. `total_w` / `match_w` are the
/// node's weighted totals and `parent_impurity` its Gini impurity.
///
/// Both engines call this with the same entry sequence, so the prefix
/// sums — and every quantity derived from them — are bit-identical.
pub(crate) fn best_feature_split<F>(
    n: usize,
    entry: F,
    total_w: f64,
    match_w: f64,
    parent_impurity: f64,
    config: &DecisionTreeConfig,
) -> Option<SplitCandidate>
where
    F: Fn(usize) -> (f64, f64, bool),
{
    if n < 2 {
        return None;
    }
    let mut best: Option<SplitCandidate> = None;
    let mut left_w = 0.0;
    let mut left_match = 0.0;
    let mut left_n = 0usize;
    let (mut v, mut wi, mut is_match) = entry(0);
    for k in 0..n - 1 {
        let (next_v, next_w, next_match) = entry(k + 1);
        left_w += wi;
        if is_match {
            left_match += wi;
        }
        left_n += 1;
        // A threshold only separates strictly increasing neighbours; the
        // strict IEEE `<` is false when either side is NaN, so the NaN
        // tail (sorted last) is never split off.
        if v < next_v {
            let right_n = n - left_n;
            if left_n >= config.min_samples_leaf && right_n >= config.min_samples_leaf {
                let right_w = total_w - left_w;
                if left_w > 0.0 && right_w > 0.0 {
                    let right_match = match_w - left_match;
                    let impurity = (left_w * gini(left_match / left_w)
                        + right_w * gini(right_match / right_w))
                        / total_w;
                    let decrease = parent_impurity - impurity;
                    let balance = left_n.min(right_n);
                    if decrease + DECREASE_EPS >= config.min_impurity_decrease
                        && improves(decrease, balance, best.map(|b| (b.decrease, b.balance)))
                    {
                        // The midpoint can round up to exactly `next_v`
                        // when the two values are adjacent floats; fall
                        // back to `v` so the `<= threshold` partition
                        // always separates both sides.
                        let mid = 0.5 * (v + next_v);
                        let threshold = if mid < next_v { mid } else { v };
                        best =
                            Some(SplitCandidate { threshold, decrease, balance, n_left: left_n });
                    }
                }
            }
        }
        (v, wi, is_match) = (next_v, next_w, next_match);
    }
    best
}

/// Fold one feature's best split into the cross-feature best, in candidate
/// order. Shared so both engines resolve cross-feature ties identically.
#[inline]
pub(crate) fn fold_best(
    acc: &mut Option<(usize, SplitCandidate)>,
    feature: usize,
    cand: Option<SplitCandidate>,
) {
    if let Some(c) = cand {
        if improves(c.decrease, c.balance, acc.as_ref().map(|(_, b)| (b.decrease, b.balance))) {
            *acc = Some((feature, c));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_parse() {
        assert_eq!(TreeEngine::parse("presorted"), TreeEngine::Presorted);
        assert_eq!(TreeEngine::parse(" Reference "), TreeEngine::Reference);
        assert_eq!(TreeEngine::parse("ref"), TreeEngine::Reference);
        assert_eq!(TreeEngine::parse("per-node-sort"), TreeEngine::Reference);
        assert_eq!(TreeEngine::parse(""), TreeEngine::Presorted);
        assert_eq!(TreeEngine::parse("nonsense"), TreeEngine::Presorted);
        assert_eq!(TreeEngine::Presorted.name(), "presorted");
        assert_eq!(TreeEngine::Reference.name(), "reference");
    }

    #[test]
    fn feature_cmp_is_a_total_order_with_nan_maximal() {
        let nan = f64::NAN;
        let neg_nan = -f64::NAN;
        assert_eq!(feature_cmp(1.0, 2.0), Ordering::Less);
        assert_eq!(feature_cmp(2.0, 2.0), Ordering::Equal);
        assert_eq!(feature_cmp(-0.0, 0.0), Ordering::Less); // total_cmp on signed zero
        assert_eq!(feature_cmp(f64::INFINITY, nan), Ordering::Less);
        assert_eq!(feature_cmp(nan, f64::INFINITY), Ordering::Greater);
        // Every NaN is one equivalence class, regardless of sign/payload —
        // the seed comparator ordered -NaN below -inf via total_cmp-like
        // bit order, which would have put NaN rows *inside* split ranges.
        assert_eq!(feature_cmp(nan, neg_nan), Ordering::Equal);
        assert_eq!(feature_cmp(neg_nan, 0.0), Ordering::Greater);
    }

    #[test]
    fn scan_finds_the_obvious_boundary() {
        // Two clusters, uniform weights: the split lands between them.
        let col = [(0.1, 1.0, false), (0.2, 1.0, false), (0.8, 1.0, true), (0.9, 1.0, true)];
        let cand = best_feature_split(
            col.len(),
            |k| col[k],
            4.0,
            2.0,
            gini(0.5),
            &DecisionTreeConfig::default(),
        )
        .expect("split exists");
        assert!((cand.threshold - 0.5).abs() < 1e-12);
        assert!((cand.decrease - gini(0.5)).abs() < 1e-12);
        assert_eq!(cand.balance, 2);
        assert_eq!(cand.n_left, 2);
    }

    #[test]
    fn scan_skips_tied_and_nan_boundaries() {
        // All values equal: no boundary.
        let tied = [(0.5, 1.0, true), (0.5, 1.0, false)];
        assert!(best_feature_split(
            2,
            |k| tied[k],
            2.0,
            1.0,
            gini(0.5),
            &DecisionTreeConfig::default()
        )
        .is_none());
        // Finite → NaN neighbours: no boundary either (the NaN tail stays
        // attached to the right side).
        let with_nan = [(0.5, 1.0, true), (f64::NAN, 1.0, false)];
        assert!(best_feature_split(
            2,
            |k| with_nan[k],
            2.0,
            1.0,
            gini(0.5),
            &DecisionTreeConfig::default()
        )
        .is_none());
        // Singleton columns can never split.
        assert!(best_feature_split(
            1,
            |_| (0.5, 1.0, true),
            1.0,
            1.0,
            0.0,
            &DecisionTreeConfig::default()
        )
        .is_none());
    }

    #[test]
    fn fold_prefers_gain_then_balance_then_first() {
        let c = |decrease, balance| {
            Some(SplitCandidate { threshold: 0.5, decrease, balance, n_left: 1 })
        };
        let mut best = None;
        fold_best(&mut best, 0, c(0.1, 3));
        fold_best(&mut best, 1, c(0.1, 5)); // same gain, better balance
        assert_eq!(best.unwrap().0, 1);
        fold_best(&mut best, 2, c(0.2, 1)); // better gain wins outright
        assert_eq!(best.unwrap().0, 2);
        fold_best(&mut best, 3, c(0.2, 1)); // exact tie: first wins
        assert_eq!(best.unwrap().0, 2);
        fold_best(&mut best, 4, None); // featureless candidates are ignored
        assert_eq!(best.unwrap().0, 2);
    }
}

//! Traditional machine-learning classifiers implemented from scratch.
//!
//! The paper classifies record pairs with a set of scikit-learn models —
//! support vector machine, random forest, logistic regression and decision
//! tree — and averages their linkage quality (Section 5.1.1). Mature Rust
//! bindings for these do not exist, so this crate implements them directly:
//!
//! * [`LogisticRegression`] — batch gradient descent with L2 regularisation.
//! * [`DecisionTree`] — CART with weighted Gini impurity.
//! * [`RandomForest`] — bagged CART trees with per-split feature sampling.
//! * [`LinearSvm`] — Pegasos-style SGD on the hinge loss, with Platt
//!   scaling so that [`Classifier::predict_proba`] is calibrated (the GEN
//!   phase of TransER depends on meaningful confidence scores).
//! * [`Mlp`] / [`GrlNet`] — small feed-forward networks; `GrlNet` adds the
//!   gradient-reversal domain-adversarial head used by the DTAL* baseline.
//!
//! All classifiers implement the common [`Classifier`] trait and accept
//! optional per-sample weights (required by the instance-reweighting DR
//! baseline).
//!
//! Decision trees (and the forests built from them) train through one of
//! two engines selected by [`TreeEngine`] / the `TRANSER_TREE_ENGINE`
//! environment variable: the default presorted exact-greedy engine (sort
//! each feature column once per tree, grow by stable partition) and the
//! pinned per-node-sort reference it is tested bit-identical against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dann;
mod forest;
mod logistic;
mod mlp;
mod naive_bayes;
mod persist;
mod presorted;
mod sampling;
mod scaler;
mod split;
mod svm;
mod traits;
mod tree;

pub use dann::{GrlConfig, GrlNet};
pub use forest::{RandomForest, RandomForestConfig};
pub use logistic::{LogisticRegression, LogisticRegressionConfig};
pub use mlp::{Mlp, MlpConfig};
pub use naive_bayes::GaussianNaiveBayes;
pub use persist::{PersistedModel, MODEL_SCHEMA_VERSION};
pub use sampling::{bootstrap_bag, stratified_fraction, undersample_to_ratio};
pub use scaler::StandardScaler;
pub use split::{TreeEngine, TREE_ENGINE_ENV};
pub use svm::{LinearSvm, LinearSvmConfig};
pub use traits::{Classifier, ClassifierKind};
pub use tree::{DecisionTree, DecisionTreeConfig};

//! L2-regularised logistic regression trained by batch gradient descent.

use transer_common::{Error, FeatureMatrix, Label, Result};

use crate::traits::{check_training_input, Classifier};

/// Hyper-parameters for [`LogisticRegression`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogisticRegressionConfig {
    /// Number of full-batch gradient steps.
    pub epochs: usize,
    /// Initial learning rate (decayed as `lr / (1 + t·decay)`).
    pub learning_rate: f64,
    /// Learning-rate decay per epoch.
    pub decay: f64,
    /// L2 penalty on the weights (not the intercept).
    pub l2: f64,
}

impl Default for LogisticRegressionConfig {
    fn default() -> Self {
        // ER feature spaces are tiny (4-11 similarity features in [0,1]),
        // so a few hundred full-batch steps converge reliably.
        LogisticRegressionConfig { epochs: 800, learning_rate: 2.0, decay: 0.005, l2: 1e-6 }
    }
}

/// Logistic regression `P(match | x) = σ(w·x + b)`.
#[derive(Debug, Clone, Default)]
pub struct LogisticRegression {
    config: LogisticRegressionConfig,
    weights: Vec<f64>,
    bias: f64,
    fitted: bool,
}

impl LogisticRegression {
    /// Create with explicit hyper-parameters.
    pub fn new(config: LogisticRegressionConfig) -> Self {
        LogisticRegression { config, weights: Vec::new(), bias: 0.0, fitted: false }
    }

    /// Learned weight vector (empty before `fit`).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Learned intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Prediction state for model persistence.
    pub(crate) fn persist_parts(&self) -> (&LogisticRegressionConfig, &[f64], f64, bool) {
        (&self.config, &self.weights, self.bias, self.fitted)
    }

    /// Rebuild from persisted prediction state.
    pub(crate) fn from_persist_parts(
        config: LogisticRegressionConfig,
        weights: Vec<f64>,
        bias: f64,
        fitted: bool,
    ) -> Self {
        LogisticRegression { config, weights, bias, fitted }
    }

    fn raw_score(&self, row: &[f64]) -> f64 {
        self.bias + self.weights.iter().zip(row).map(|(w, x)| w * x).sum::<f64>()
    }
}

#[inline]
pub(crate) fn sigmoid(z: f64) -> f64 {
    // Split on sign for numerical stability at large |z|.
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl Classifier for LogisticRegression {
    fn name(&self) -> &'static str {
        "logreg"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn fit_weighted(
        &mut self,
        x: &FeatureMatrix,
        y: &[Label],
        weights: Option<&[f64]>,
    ) -> Result<()> {
        check_training_input(x, y, weights)?;
        let n = x.rows();
        let m = x.cols();
        let w_total: f64 = weights.map_or(n as f64, |w| w.iter().sum());
        if w_total <= 0.0 {
            return Err(Error::TrainingFailed("all sample weights are zero".into()));
        }
        self.weights = vec![0.0; m];
        self.bias = 0.0;
        let mut grad = vec![0.0; m];
        for epoch in 0..self.config.epochs {
            grad.iter_mut().for_each(|g| *g = 0.0);
            let mut grad_b = 0.0;
            for (i, row) in x.iter_rows().enumerate() {
                let p = sigmoid(self.raw_score(row));
                let err = p - y[i].as_f64();
                let wi = weights.map_or(1.0, |w| w[i]);
                let e = err * wi;
                for (g, &xv) in grad.iter_mut().zip(row) {
                    *g += e * xv;
                }
                grad_b += e;
            }
            let lr = self.config.learning_rate / (1.0 + epoch as f64 * self.config.decay);
            for (w, g) in self.weights.iter_mut().zip(&grad) {
                *w -= lr * (g / w_total + self.config.l2 * *w);
            }
            self.bias -= lr * grad_b / w_total;
        }
        if self.weights.iter().any(|w| !w.is_finite()) || !self.bias.is_finite() {
            return Err(Error::TrainingFailed("logistic regression diverged".into()));
        }
        self.fitted = true;
        Ok(())
    }

    fn predict_proba(&self, x: &FeatureMatrix) -> Vec<f64> {
        if !self.fitted {
            return vec![0.5; x.rows()]; // unfitted: uninformative prior
        }
        x.iter_rows().map(|row| sigmoid(self.raw_score(row))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> (FeatureMatrix, Vec<Label>) {
        // Matches cluster near 1, non-matches near 0 on both features.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            let jitter = (i % 5) as f64 * 0.02;
            rows.push(vec![0.9 - jitter, 0.85 + jitter / 2.0]);
            labels.push(Label::Match);
            rows.push(vec![0.1 + jitter, 0.2 - jitter / 2.0]);
            labels.push(Label::NonMatch);
        }
        (FeatureMatrix::from_vecs(&rows).unwrap(), labels)
    }

    #[test]
    fn learns_separable_data() {
        let (x, y) = separable();
        let mut clf = LogisticRegression::default();
        clf.fit(&x, &y).unwrap();
        let pred = clf.predict(&x);
        assert_eq!(pred, y);
        // High-similarity pair should be confidently a match.
        let p = clf.predict_proba(&FeatureMatrix::from_vecs(&[vec![0.95, 0.95]]).unwrap());
        assert!(p[0] > 0.9, "{}", p[0]);
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let (x, y) = separable();
        let mut clf = LogisticRegression::default();
        clf.fit(&x, &y).unwrap();
        for p in clf.predict_proba(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn weighted_fit_shifts_boundary() {
        // Identical ambiguous point labelled both ways; weights decide.
        let x = FeatureMatrix::from_vecs(&[vec![0.5], vec![0.5]]).unwrap();
        let y = vec![Label::Match, Label::NonMatch];
        let mut heavy_match = LogisticRegression::default();
        heavy_match.fit_weighted(&x, &y, Some(&[10.0, 1.0])).unwrap();
        let mut heavy_non = LogisticRegression::default();
        heavy_non.fit_weighted(&x, &y, Some(&[1.0, 10.0])).unwrap();
        let q = FeatureMatrix::from_vecs(&[vec![0.5]]).unwrap();
        assert!(heavy_match.predict_proba(&q)[0] > 0.5);
        assert!(heavy_non.predict_proba(&q)[0] < 0.5);
    }

    #[test]
    fn rejects_bad_input() {
        let mut clf = LogisticRegression::default();
        assert!(clf.fit(&FeatureMatrix::empty(2), &[]).is_err());
        let x = FeatureMatrix::from_vecs(&[vec![0.5]]).unwrap();
        assert!(clf.fit_weighted(&x, &[Label::Match], Some(&[0.0])).is_err());
    }

    #[test]
    fn sigmoid_stability() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn predict_before_fit_is_uninformative() {
        let clf = LogisticRegression::default();
        let p = clf.predict_proba(&FeatureMatrix::from_vecs(&[vec![0.5], vec![0.9]]).unwrap());
        assert_eq!(p, vec![0.5, 0.5]);
    }
}

//! Random forest: bagged CART trees with per-split feature sampling.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use transer_common::{FeatureMatrix, Label, Result};

use crate::traits::{check_training_input, Classifier};
use crate::tree::{DecisionTree, DecisionTreeConfig};

/// Hyper-parameters for [`RandomForest`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomForestConfig {
    /// Number of bagged trees.
    pub n_trees: usize,
    /// Configuration applied to every tree.
    pub tree: DecisionTreeConfig,
    /// Features considered per split; `None` means `ceil(sqrt(m))`.
    pub max_features: Option<usize>,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        RandomForestConfig {
            n_trees: 24,
            tree: DecisionTreeConfig { max_depth: 14, ..Default::default() },
            max_features: None,
        }
    }
}

/// Bagging ensemble of [`DecisionTree`]s; the match probability is the mean
/// of the per-tree leaf probabilities.
#[derive(Debug, Clone)]
pub struct RandomForest {
    config: RandomForestConfig,
    seed: u64,
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Create with explicit hyper-parameters and RNG seed.
    pub fn new(config: RandomForestConfig, seed: u64) -> Self {
        RandomForest { config, seed, trees: Vec::new() }
    }

    /// Default configuration with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        RandomForest::new(RandomForestConfig::default(), seed)
    }

    /// Number of fitted trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for RandomForest {
    fn name(&self) -> &'static str {
        "rf"
    }

    fn fit_weighted(
        &mut self,
        x: &FeatureMatrix,
        y: &[Label],
        weights: Option<&[f64]>,
    ) -> Result<()> {
        check_training_input(x, y, weights)?;
        let n = x.rows();
        let m = x.cols();
        let max_features = self.config.max_features.unwrap_or((m as f64).sqrt().ceil() as usize);
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.trees.clear();
        self.trees.reserve(self.config.n_trees);

        // Bootstrap weights: each tree draws n samples with replacement; we
        // encode the draw as per-sample multiplicities folded into the
        // sample weights so duplicated rows are never materialised.
        let base: Vec<f64> = match weights {
            Some(w) => w.to_vec(),
            None => vec![1.0; n],
        };
        let mut counts = vec![0u32; n];
        for t in 0..self.config.n_trees {
            counts.iter_mut().for_each(|c| *c = 0);
            for _ in 0..n {
                counts[rng.random_range(0..n)] += 1;
            }
            let bag: Vec<usize> = (0..n).filter(|&i| counts[i] > 0).collect();
            if bag.is_empty() {
                continue;
            }
            let bag_x = x.select_rows(&bag);
            let bag_y: Vec<Label> = bag.iter().map(|&i| y[i]).collect();
            let bag_w: Vec<f64> = bag.iter().map(|&i| base[i] * counts[i] as f64).collect();

            let mut tree = DecisionTree::new(self.config.tree);
            tree.feature_subset = Some(max_features);
            tree.rng_state = self
                .seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(t as u64 + 1)
                | 1;
            tree.fit_weighted(&bag_x, &bag_y, Some(&bag_w))?;
            self.trees.push(tree);
        }
        Ok(())
    }

    fn predict_proba(&self, x: &FeatureMatrix) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "predict before fit");
        let mut probs = vec![0.0; x.rows()];
        for tree in &self.trees {
            for (acc, p) in probs.iter_mut().zip(tree.predict_proba(x)) {
                *acc += p;
            }
        }
        let k = self.trees.len() as f64;
        probs.iter_mut().for_each(|p| *p /= k);
        probs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_blobs(seed: u64) -> (FeatureMatrix, Vec<Label>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..80 {
            let jitter: f64 = rng.random_range(-0.15..0.15);
            rows.push(vec![0.85 + jitter, 0.8 - jitter, rng.random_range(0.0..1.0)]);
            labels.push(Label::Match);
            rows.push(vec![0.2 - jitter / 2.0, 0.25 + jitter, rng.random_range(0.0..1.0)]);
            labels.push(Label::NonMatch);
        }
        (FeatureMatrix::from_vecs(&rows).unwrap(), labels)
    }

    #[test]
    fn learns_noisy_blobs() {
        let (x, y) = noisy_blobs(7);
        let mut rf = RandomForest::with_seed(42);
        rf.fit(&x, &y).unwrap();
        let correct = rf
            .predict(&x)
            .iter()
            .zip(&y)
            .filter(|(a, b)| a == b)
            .count();
        assert!(correct as f64 / y.len() as f64 > 0.97);
        assert_eq!(rf.tree_count(), RandomForestConfig::default().n_trees);
    }

    #[test]
    fn probabilities_bounded_and_averaged() {
        let (x, y) = noisy_blobs(3);
        let mut rf = RandomForest::with_seed(1);
        rf.fit(&x, &y).unwrap();
        for p in rf.predict_proba(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = noisy_blobs(5);
        let mut a = RandomForest::with_seed(9);
        let mut b = RandomForest::with_seed(9);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    fn different_seeds_differ() {
        let (x, y) = noisy_blobs(5);
        let mut a = RandomForest::with_seed(1);
        let mut b = RandomForest::with_seed(2);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        // On the training blobs every tree may be pure, so probe the
        // ambiguous region between the classes where bagging noise shows.
        let probes = FeatureMatrix::from_vecs(&[
            vec![0.5, 0.5, 0.5],
            vec![0.45, 0.55, 0.2],
            vec![0.55, 0.45, 0.8],
            vec![0.6, 0.4, 0.5],
            vec![0.4, 0.6, 0.5],
        ])
        .unwrap();
        assert_ne!(a.predict_proba(&probes), b.predict_proba(&probes));
    }

    #[test]
    fn rejects_empty() {
        let mut rf = RandomForest::with_seed(0);
        assert!(rf.fit(&FeatureMatrix::empty(3), &[]).is_err());
    }
}

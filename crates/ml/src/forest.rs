//! Random forest: bagged CART trees with per-split feature sampling.

use rand::rngs::StdRng;
use rand::SeedableRng;
use transer_common::{FeatureMatrix, Label, Result};
use transer_parallel::{CostHint, Pool};

/// Estimated cost of fitting one tree, per training row: drives the grain
/// hint that decides whether per-tree training fans out. `bench_grain`
/// measures ~60 ns/tree-row at bench scale (the presorted engine fits
/// much faster than a naive estimate suggests).
const TREE_FIT_ROW_NANOS: u64 = 100;

/// Estimated cost of one tree predicting one row (a depth-bounded
/// traversal).
const TREE_PREDICT_ROW_NANOS: u64 = 50;

use crate::presorted::ForestPresort;
use crate::sampling::bootstrap_bag;
use crate::split::TreeEngine;
use crate::traits::{check_training_input, Classifier};
use crate::tree::{DecisionTree, DecisionTreeConfig};

/// Hyper-parameters for [`RandomForest`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomForestConfig {
    /// Number of bagged trees.
    pub n_trees: usize,
    /// Configuration applied to every tree.
    pub tree: DecisionTreeConfig,
    /// Features considered per split; `None` means `ceil(sqrt(m))`.
    pub max_features: Option<usize>,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        RandomForestConfig {
            n_trees: 24,
            tree: DecisionTreeConfig { max_depth: 14, ..Default::default() },
            max_features: None,
        }
    }
}

/// Bagging ensemble of [`DecisionTree`]s; the match probability is the mean
/// of the per-tree leaf probabilities.
#[derive(Debug, Clone)]
pub struct RandomForest {
    config: RandomForestConfig,
    seed: u64,
    trees: Vec<DecisionTree>,
    /// Explicit pool override; `None` = the global pool.
    pool: Option<Pool>,
    engine: TreeEngine,
}

impl RandomForest {
    /// Create with explicit hyper-parameters and RNG seed.
    pub fn new(config: RandomForestConfig, seed: u64) -> Self {
        RandomForest { config, seed, trees: Vec::new(), pool: None, engine: TreeEngine::from_env() }
    }

    /// Default configuration with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        RandomForest::new(RandomForestConfig::default(), seed)
    }

    /// Pin the worker count for training and prediction instead of using
    /// the global [`Pool`] (`TRANSER_THREADS`). Results are bit-identical
    /// for every worker count; this only controls resource usage.
    pub fn with_threads(self, workers: usize) -> Self {
        self.with_pool(Pool::new(workers))
    }

    /// Pin the exact [`Pool`] (worker count *and* grain policy) used for
    /// training and prediction — the hook the inline≡pooled bit-identity
    /// tests use. Results never depend on the pool.
    pub fn with_pool(mut self, pool: Pool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Override the tree training engine (default: `TRANSER_TREE_ENGINE`
    /// via [`TreeEngine::from_env`]). Both engines yield bit-identical
    /// forests.
    pub fn with_engine(mut self, engine: TreeEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Prediction state for model persistence: hyper-parameters, forest
    /// seed and the fitted trees.
    pub(crate) fn persist_parts(&self) -> (&RandomForestConfig, u64, &[DecisionTree]) {
        (&self.config, self.seed, &self.trees)
    }

    /// Rebuild a forest from persisted prediction state (pool override and
    /// engine reset to defaults — see `DecisionTree::from_persist_parts`).
    pub(crate) fn from_persist_parts(
        config: RandomForestConfig,
        seed: u64,
        trees: Vec<DecisionTree>,
    ) -> Self {
        RandomForest { trees, ..RandomForest::new(config, seed) }
    }

    /// Number of fitted trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    fn pool(&self) -> Pool {
        self.pool.unwrap_or_else(Pool::global)
    }

    /// The bootstrap-sampling seed of tree `t`: splitmix-style spreading of
    /// the forest seed, decorrelated (different odd constant) from the
    /// per-tree feature-subset stream derived in `fit_weighted`. Deriving
    /// per-tree seeds — instead of threading one sequential RNG through the
    /// bagging loop — is what makes parallel training bit-identical to
    /// sequential.
    fn bootstrap_seed(&self, t: usize) -> u64 {
        self.seed ^ (t as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F)
    }
}

impl Classifier for RandomForest {
    fn name(&self) -> &'static str {
        "rf"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn fit_weighted(
        &mut self,
        x: &FeatureMatrix,
        y: &[Label],
        weights: Option<&[f64]>,
    ) -> Result<()> {
        let _span = transer_trace::span("ml.forest.fit");
        check_training_input(x, y, weights)?;
        let n = x.rows();
        let m = x.cols();
        let max_features = self.config.max_features.unwrap_or((m as f64).sqrt().ceil() as usize);

        // Bootstrap weights: each tree draws n samples with replacement; we
        // encode the draw as per-sample multiplicities folded into the
        // sample weights so duplicated rows are never materialised.
        let base: Vec<f64> = match weights {
            Some(w) => w.to_vec(),
            None => vec![1.0; n],
        };

        // Presorted engine: sort the feature columns of the full matrix
        // once per forest; each tree filters that order by its bag instead
        // of re-sorting a materialised bagged matrix (bit-identical — see
        // `presorted::grow_bagged`).
        let presort =
            (self.engine == TreeEngine::Presorted).then(|| ForestPresort::new(x, &self.pool()));

        // Each tree is independent given its two derived seeds (bootstrap
        // draw + feature-subset stream), so training parallelises with no
        // sequencing between trees; collected in index order.
        let indices: Vec<usize> = (0..self.config.n_trees).collect();
        let per_tree = (n as u64).saturating_mul(TREE_FIT_ROW_NANOS);
        let fit_hint = CostHint::with_per_item_nanos(indices.len(), per_tree);
        let fitted: Vec<Result<Option<DecisionTree>>> = self.pool().par_map_init_costed(
            &indices,
            fit_hint,
            || (vec![0u32; n], vec![0.0f64; n]),
            |(counts, w_full), _, &t| {
                let mut rng = StdRng::seed_from_u64(self.bootstrap_seed(t));
                let (bag, bag_w) = bootstrap_bag(&mut rng, &base, counts);
                transer_trace::counter("ml.trees", 1);
                transer_trace::observe("ml.bag_size", bag.len() as f64);
                if bag.is_empty() {
                    return Ok(None);
                }

                // Trees train single-threaded: the per-tree fan-out above
                // already saturates the pool, and nested split-search
                // parallelism would only add spawn overhead.
                let mut tree =
                    DecisionTree::new(self.config.tree).with_engine(self.engine).with_threads(1);
                tree.feature_subset = Some(max_features);
                tree.rng_state =
                    self.seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(t as u64 + 1) | 1;
                match &presort {
                    Some(presort) => {
                        w_full.fill(0.0);
                        for (&row, &wv) in bag.iter().zip(&bag_w) {
                            w_full[row] = wv;
                        }
                        tree.fit_bagged(presort, y, w_full, counts);
                    }
                    None => {
                        let bag_x = x.select_rows(&bag);
                        let bag_y: Vec<Label> = bag.iter().map(|&i| y[i]).collect();
                        tree.fit_weighted(&bag_x, &bag_y, Some(&bag_w))?;
                    }
                }
                Ok(Some(tree))
            },
        );

        self.trees.clear();
        self.trees.reserve(self.config.n_trees);
        for tree in fitted {
            if let Some(tree) = tree? {
                self.trees.push(tree);
            }
        }
        Ok(())
    }

    fn predict_proba(&self, x: &FeatureMatrix) -> Vec<f64> {
        let _span = transer_trace::span("ml.forest.predict");
        if self.trees.is_empty() {
            return vec![0.5; x.rows()]; // unfitted: uninformative prior
        }
        // Trees vote independently; the fold over per-tree outputs stays
        // sequential in tree order so the float sums are bit-identical for
        // every worker count.
        let per_tree_nanos = (x.rows() as u64).saturating_mul(TREE_PREDICT_ROW_NANOS);
        let hint = CostHint::with_per_item_nanos(self.trees.len(), per_tree_nanos);
        let per_tree: Vec<Vec<f64>> =
            self.pool().par_map_costed(&self.trees, hint, |tree| tree.predict_proba(x));
        let mut probs = vec![0.0; x.rows()];
        for tree_probs in &per_tree {
            for (acc, p) in probs.iter_mut().zip(tree_probs) {
                *acc += p;
            }
        }
        let k = self.trees.len() as f64;
        probs.iter_mut().for_each(|p| *p /= k);
        probs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    fn noisy_blobs(seed: u64) -> (FeatureMatrix, Vec<Label>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..80 {
            let jitter: f64 = rng.random_range(-0.15..0.15);
            rows.push(vec![0.85 + jitter, 0.8 - jitter, rng.random_range(0.0..1.0)]);
            labels.push(Label::Match);
            rows.push(vec![0.2 - jitter / 2.0, 0.25 + jitter, rng.random_range(0.0..1.0)]);
            labels.push(Label::NonMatch);
        }
        (FeatureMatrix::from_vecs(&rows).unwrap(), labels)
    }

    #[test]
    fn learns_noisy_blobs() {
        let (x, y) = noisy_blobs(7);
        let mut rf = RandomForest::with_seed(42);
        rf.fit(&x, &y).unwrap();
        let correct = rf.predict(&x).iter().zip(&y).filter(|(a, b)| a == b).count();
        assert!(correct as f64 / y.len() as f64 > 0.97);
        assert_eq!(rf.tree_count(), RandomForestConfig::default().n_trees);
    }

    #[test]
    fn probabilities_bounded_and_averaged() {
        let (x, y) = noisy_blobs(3);
        let mut rf = RandomForest::with_seed(1);
        rf.fit(&x, &y).unwrap();
        for p in rf.predict_proba(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = noisy_blobs(5);
        let mut a = RandomForest::with_seed(9);
        let mut b = RandomForest::with_seed(9);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    fn different_seeds_differ() {
        let (x, y) = noisy_blobs(5);
        let mut a = RandomForest::with_seed(1);
        let mut b = RandomForest::with_seed(2);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        // On the training blobs every tree may be pure, so probe the
        // ambiguous region between the classes where bagging noise shows.
        let probes = FeatureMatrix::from_vecs(&[
            vec![0.5, 0.5, 0.5],
            vec![0.45, 0.55, 0.2],
            vec![0.55, 0.45, 0.8],
            vec![0.6, 0.4, 0.5],
            vec![0.4, 0.6, 0.5],
        ])
        .unwrap();
        assert_ne!(a.predict_proba(&probes), b.predict_proba(&probes));
    }

    #[test]
    fn parallel_fit_is_bit_identical_to_sequential() {
        let (x, y) = noisy_blobs(11);
        let probes = FeatureMatrix::from_vecs(&[
            vec![0.5, 0.5, 0.5],
            vec![0.45, 0.55, 0.2],
            vec![0.55, 0.45, 0.8],
            vec![0.85, 0.8, 0.1],
            vec![0.2, 0.25, 0.9],
        ])
        .unwrap();
        let mut seq = RandomForest::with_seed(17).with_threads(1);
        seq.fit(&x, &y).unwrap();
        let expected = seq.predict_proba(&probes);
        for workers in [2, 4, 16] {
            let mut par = RandomForest::with_seed(17).with_threads(workers);
            par.fit(&x, &y).unwrap();
            assert_eq!(par.tree_count(), seq.tree_count());
            let got = par.predict_proba(&probes);
            for (a, b) in expected.iter().zip(&got) {
                assert_eq!(a.to_bits(), b.to_bits(), "workers={workers}");
            }
        }
    }

    #[test]
    fn rejects_empty() {
        let mut rf = RandomForest::with_seed(0);
        assert!(rf.fit(&FeatureMatrix::empty(3), &[]).is_err());
    }
}

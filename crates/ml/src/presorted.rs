//! The presorted exact-greedy tree training engine.
//!
//! The reference engine re-sorts every candidate feature column at every
//! node, making training `O(nodes · features · n log n)`. This engine
//! removes the per-node sort entirely:
//!
//! 1. **Presort once.** Each feature column of the column-major training
//!    view ([`ColMajorMatrix`]) is sorted into a row-id index array under
//!    the NaN-safe total order of `crate::split`, ties broken by ascending
//!    row — `O(features · n log n)` once. Only the `u32` ids are stored;
//!    feature values are gathered from the column-major view during the
//!    scans, which keeps the per-split partition traffic at 4 bytes per
//!    entry.
//! 2. **Grow by stable partition.** A node is a contiguous segment
//!    `[start, end)` shared by all per-feature arrays (plus a row-ordered
//!    index array used for the weighted totals). Splitting stably
//!    partitions every array in place against the left/right mask —
//!    `O(features · n)` per level, no sorting — which preserves the
//!    `(value, row)` order inside both children.
//! 3. **Weighted prefix-sum scans.** Each candidate feature's segment is
//!    already sorted, so the split search is one linear scan through
//!    `crate::split::best_feature_split` — the same arithmetic, in the
//!    same order, as the reference engine, which is why the two produce
//!    bit-identical trees (pinned by `tests/engine_equivalence.rs`).
//!
//! For the random forest the presort is hoisted out of the bagging loop
//! entirely ([`ForestPresort`]): the full matrix is sorted once per
//! forest, and each tree derives its bagged columns by filtering the
//! global order against its bootstrap multiplicities. The filter is
//! stable, and the bag's local row numbering is monotone in the original
//! row ids, so the filtered order equals what sorting the bagged matrix
//! from scratch would produce — tie-breaks included. That turns the
//! engine's dominant fixed cost, `O(trees · features · n log n)`, into
//! `O(features · n log n) + O(trees · features · n)`.
//!
//! Large nodes fan the candidate scans out over `transer-parallel` in
//! fixed-size feature panels; panel outputs are reduced sequentially in
//! candidate order, so results are independent of the worker count.

use transer_common::{ColMajorMatrix, FeatureMatrix, Label};
use transer_parallel::{CostHint, Pool};

use crate::split::{best_feature_split, feature_cmp, fold_best, gini, SplitCandidate};
use crate::tree::{DecisionTree, DecisionTreeConfig, Node, NO_NODE};

/// Features per parallel split-search chunk. Fixed — independent of the
/// worker count — so the panel boundaries (and thus the scan batching)
/// never depend on scheduling.
const SPLIT_PANEL: usize = 2;

/// Estimated cost of scanning one presorted row during a split search:
/// feeds the [`CostHint`] that gates fanning the search out.
const SPLIT_SCAN_ROW_NANOS: u64 = 20;

/// Estimated per-row cost of sorting one feature column (comparison sort,
/// small log factor folded in).
const COL_SORT_ROW_NANOS: u64 = 100;

/// One feature's row ids in presorted `(value, row)` order; stably
/// partitioned at every split so each tree node stays a contiguous
/// segment. Values live in the shared [`ColMajorMatrix`].
type SortedColumn = Vec<u32>;

/// Sort every feature column of `matrix` into `(value, row)` order under
/// the NaN-safe total order; per-feature sorts fan out over the pool.
fn presort_columns(matrix: &ColMajorMatrix, pool: &Pool) -> Vec<SortedColumn> {
    let features: Vec<usize> = (0..matrix.cols()).collect();
    let per_col = (matrix.rows() as u64).saturating_mul(COL_SORT_ROW_NANOS);
    let hint = CostHint::with_per_item_nanos(features.len(), per_col);
    pool.par_map_costed(&features, hint, |&f| {
        let col = matrix.col(f);
        let mut ids: Vec<u32> = (0..col.len() as u32).collect();
        ids.sort_unstable_by(|&a, &b| {
            feature_cmp(col[a as usize], col[b as usize]).then(a.cmp(&b))
        });
        ids
    })
}

/// The forest-shared half of the engine: the column-major view and the
/// full-matrix presort, computed once per forest and borrowed by every
/// tree's bagged training call (`DecisionTree::fit_bagged`).
pub(crate) struct ForestPresort {
    matrix: ColMajorMatrix,
    columns: Vec<SortedColumn>,
}

impl ForestPresort {
    /// Build the training view and presort every feature column of `x`.
    pub(crate) fn new(x: &FeatureMatrix, pool: &Pool) -> Self {
        let matrix = ColMajorMatrix::from_matrix(x);
        let columns = presort_columns(&matrix, pool);
        ForestPresort { matrix, columns }
    }
}

/// Train `tree` on `(x, y, w)` with the presorted engine; returns the root
/// node id. Called by `DecisionTree::fit_weighted` after input validation.
pub(crate) fn grow(tree: &mut DecisionTree, x: &FeatureMatrix, y: &[Label], w: &[f64]) -> u32 {
    let n = x.rows();
    let pool = tree.pool();
    let matrix = ColMajorMatrix::from_matrix(x);
    let columns = presort_columns(&matrix, &pool);
    let rows: Vec<u32> = (0..n as u32).collect();
    grow_segments(tree, &matrix, columns, rows, y, w, pool)
}

/// Train `tree` on the bagged subset of a forest-shared presort; returns
/// the root node id. `y` and `w` are full-length (original row ids), with
/// `w` zero outside the bag; `counts` are the bootstrap multiplicities —
/// rows with `counts > 0` form the bag.
///
/// Filtering the global sorted order by bag membership is stable, and the
/// bag-local row numbering the reference engine would use is monotone in
/// the original ids, so every scan sees the exact `(value, weight, label)`
/// sequence it would see on a freshly sorted bagged matrix.
pub(crate) fn grow_bagged(
    tree: &mut DecisionTree,
    presort: &ForestPresort,
    y: &[Label],
    w: &[f64],
    counts: &[u32],
) -> u32 {
    let pool = tree.pool();
    let rows: Vec<u32> =
        (0..presort.matrix.rows() as u32).filter(|&r| counts[r as usize] > 0).collect();
    // Branchless compaction: in-bag membership is near-random along the
    // sorted order, so `filter` would mispredict on most rows.
    let columns: Vec<SortedColumn> = presort
        .columns
        .iter()
        .map(|full| {
            // One slack slot: out-of-bag rows write there and are then
            // overwritten (or truncated away).
            let mut ids = vec![0u32; rows.len() + 1];
            let mut write = 0;
            for &r in full {
                ids[write] = r;
                write += (counts[r as usize] > 0) as usize;
            }
            debug_assert_eq!(write, rows.len());
            ids.truncate(rows.len());
            ids
        })
        .collect();
    grow_segments(tree, &presort.matrix, columns, rows, y, w, pool)
}

/// Common driver: grow the whole tree from the active `rows` (ascending)
/// and their per-feature sorted `columns`.
fn grow_segments(
    tree: &mut DecisionTree,
    matrix: &ColMajorMatrix,
    mut columns: Vec<SortedColumn>,
    rows: Vec<u32>,
    y: &[Label],
    w: &[f64],
    pool: Pool,
) -> u32 {
    let n = rows.len();
    // Weight and label packed into one array — the label in the sign bit —
    // so every scan entry costs a single gather. `abs` and the sign test
    // recover the exact originals (`-0.0` keeps a zero-weight non-match
    // distinguishable), so the split arithmetic is unchanged.
    let wl: Vec<f64> =
        y.iter().zip(w).map(|(lab, &wv)| if lab.is_match() { wv } else { -wv }).collect();
    let mut ws = Workspace {
        rows,
        scratch: Vec::with_capacity(n),
        goes_left: vec![false; matrix.rows()],
        candidates: Vec::new(),
    };
    let mut grower = Grower { tree, matrix, wl: &wl, pool };
    grower.grow_node(&mut columns, &mut ws, 0, n, 0)
}

struct Grower<'a> {
    tree: &'a mut DecisionTree,
    matrix: &'a ColMajorMatrix,
    /// Sign-packed per-row `(weight, label)`: `w` for matches, `-w` for
    /// non-matches.
    wl: &'a [f64],
    pool: Pool,
}

struct Workspace {
    /// Row ids of the current node in ascending row order — the same
    /// accumulation order as the reference engine's `indices` recursion,
    /// so the weighted totals are bit-identical.
    rows: Vec<u32>,
    scratch: Vec<u32>,
    /// Left/right mask of the split being applied, indexed by row id.
    goes_left: Vec<bool>,
    /// Per-node candidate-feature buffer, reused across the whole tree.
    candidates: Vec<usize>,
}

impl Grower<'_> {
    fn push_leaf(&mut self, p_match: f64) -> u32 {
        let id = self.tree.nodes.len() as u32;
        self.tree.nodes.push(Node::Leaf { p_match });
        id
    }

    fn grow_node(
        &mut self,
        columns: &mut [SortedColumn],
        ws: &mut Workspace,
        start: usize,
        end: usize,
        depth: usize,
    ) -> u32 {
        let config: DecisionTreeConfig = self.tree.config;
        let n_node = end - start;
        // One pass, one gather per row; each accumulator sees the same
        // addition sequence as the reference engine's two sums. `-0.0` is
        // the identity `Sum<f64>` folds from — it keeps an empty match sum
        // (a pure non-match node) bit-identical to the reference.
        let mut total_w = -0.0;
        let mut match_w = -0.0;
        for &i in &ws.rows[start..end] {
            let wl = self.wl[i as usize];
            total_w += wl.abs();
            if !wl.is_sign_negative() {
                match_w += wl;
            }
        }
        let p_match = if total_w > 0.0 { match_w / total_w } else { 0.5 };

        if depth >= config.max_depth
            || n_node < config.min_samples_split
            || p_match == 0.0
            || p_match == 1.0
            || total_w <= 0.0
        {
            return self.push_leaf(p_match);
        }

        let parent_impurity = gini(p_match);
        self.tree.candidate_features_into(self.matrix.cols(), &mut ws.candidates);
        let candidates = &ws.candidates;
        transer_trace::counter("ml.split_scans", candidates.len() as u64);
        transer_trace::observe("ml.split_depth", depth as f64);

        let scan = |f: usize| -> Option<SplitCandidate> {
            let col = self.matrix.col(f);
            let segment = &columns[f][start..end];
            best_feature_split(
                n_node,
                |k| {
                    let row = segment[k] as usize;
                    let wl = self.wl[row];
                    (col[row], wl.abs(), !wl.is_sign_negative())
                },
                total_w,
                match_w,
                parent_impurity,
                &config,
            )
        };
        // The fold over candidates is sequential in candidate order either
        // way, so the winner never depends on the worker count. The grain
        // hint (node rows × scan cost per candidate) keeps small nodes
        // inline; the panel is pinned so scan batching never depends on
        // the dispatch decision.
        let mut best: Option<(usize, SplitCandidate)> = None;
        let per_feature_nanos = (n_node as u64).saturating_mul(SPLIT_SCAN_ROW_NANOS);
        let hint = CostHint::with_per_item_nanos(candidates.len(), per_feature_nanos);
        let per_feature: Vec<Option<SplitCandidate>> =
            self.pool.par_chunks_costed(candidates, Some(SPLIT_PANEL), hint, |_, feats| {
                feats.iter().map(|&f| scan(f)).collect()
            });
        for (&feature, cand) in candidates.iter().zip(per_feature) {
            fold_best(&mut best, feature, cand);
        }

        let Some((feature, SplitCandidate { threshold, n_left, .. })) = best else {
            return self.push_leaf(p_match);
        };

        // Same routing predicate as the reference partition and as
        // prediction: `value <= threshold` (false for NaN → right). The
        // left count comes from the winning scan's boundary position, so
        // the routing pass needs no counter: one fused pass gathers the
        // split column, records the mask for the column partitions below,
        // and stably routes the row ids branchlessly.
        debug_assert!(n_left > 0 && n_left < n_node);
        let column = self.matrix.col(feature);
        if ws.scratch.len() < n_node {
            ws.scratch.resize(n_node, 0);
        }
        let out = &mut ws.scratch[..n_node];
        let mut left = 0;
        let mut right = n_left;
        for &row in &ws.rows[start..end] {
            let go = column[row as usize] <= threshold;
            ws.goes_left[row as usize] = go;
            out[if go { left } else { right }] = row;
            left += go as usize;
            right += !go as usize;
        }
        debug_assert_eq!(left, n_left);
        ws.rows[start..end].copy_from_slice(out);
        // Children that are guaranteed leaves (depth exhausted, or both too
        // small to split) only ever read `ws.rows` — their leaf checks fire
        // before any column access — so the per-feature partitions can be
        // skipped entirely. This prunes the deepest, widest level of the
        // partition work.
        let n_right = n_node - n_left;
        let child_may_split = depth + 1 < config.max_depth
            && (n_left >= config.min_samples_split || n_right >= config.min_samples_split);
        if child_may_split {
            for (f, ids) in columns.iter_mut().enumerate() {
                // The winning feature's segment is already partitioned: the
                // scan ran in its sorted order, so entries `<= threshold`
                // are exactly the length-`n_left` prefix, both halves in
                // unchanged (value, row) order.
                if f != feature {
                    partition_stable(&mut ids[start..end], &mut ws.scratch, &ws.goes_left, n_left);
                }
            }
        } else {
            transer_trace::counter("ml.partition_skips", columns.len() as u64 - 1);
        }

        let id = self.tree.nodes.len() as u32;
        self.tree.nodes.push(Node::Split {
            feature: feature as u16,
            threshold,
            left: NO_NODE,
            right: NO_NODE,
        });
        let left = self.grow_node(columns, ws, start, start + n_left, depth + 1);
        let right = self.grow_node(columns, ws, start + n_left, end, depth + 1);
        if let Node::Split { left: l, right: r, .. } = &mut self.tree.nodes[id as usize] {
            *l = left;
            *r = right;
        }
        id
    }
}

/// Stable in-place partition of the row-id `segment` by the row-indexed
/// mask: ids mapping to `true` are compacted to the front, the rest
/// follow, both sides in their original relative order. Returns the left
/// count.
///
/// The split mask is near-random per element, so a branching loop pays a
/// misprediction per row; this writes both sides branchlessly through a
/// scratch buffer instead. `n_left` (the mask's population count over the
/// segment) seeds the right-side cursor.
fn partition_stable(
    segment: &mut [u32],
    scratch: &mut Vec<u32>,
    goes_left: &[bool],
    n_left: usize,
) {
    // Grow-only: every slot is overwritten below, so never re-zero.
    if scratch.len() < segment.len() {
        scratch.resize(segment.len(), 0);
    }
    let out = &mut scratch[..segment.len()];
    let mut left = 0;
    let mut right = n_left;
    for &row in segment.iter() {
        let go = goes_left[row as usize];
        // Both cursors exist; the mask picks which one commits — no branch.
        out[if go { left } else { right }] = row;
        left += go as usize;
        right += !go as usize;
    }
    debug_assert_eq!(left, n_left);
    segment.copy_from_slice(out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_stable_on_both_sides() {
        let mut seg = [0u32, 1, 2, 3, 4];
        let mask = [true, false, true, false, true];
        let mut scratch = Vec::new();
        partition_stable(&mut seg, &mut scratch, &mask, 3);
        assert_eq!(seg, [0, 2, 4, 1, 3]);
    }

    #[test]
    fn partition_handles_all_one_side() {
        let mut seg = [1u32, 2, 3];
        let mut scratch = Vec::new();
        partition_stable(&mut seg, &mut scratch, &[true; 4], 3);
        assert_eq!(seg, [1, 2, 3]);
        partition_stable(&mut seg, &mut scratch, &[false; 4], 0);
        assert_eq!(seg, [1, 2, 3]);
    }

    #[test]
    fn bagged_filter_preserves_sorted_order() {
        // The global presort filtered by bag membership must equal sorting
        // the bagged rows directly — including ties (rows 1, 3 tie at 0.5).
        let x = FeatureMatrix::from_vecs(&[vec![0.9], vec![0.5], vec![0.1], vec![0.5], vec![0.3]])
            .unwrap();
        let pool = Pool::sequential();
        let presort = ForestPresort::new(&x, &pool);
        assert_eq!(presort.columns[0], vec![2, 4, 1, 3, 0]);
        let counts = [1u32, 0, 2, 1, 0];
        let bagged: Vec<u32> =
            presort.columns[0].iter().copied().filter(|&r| counts[r as usize] > 0).collect();
        assert_eq!(bagged, vec![2, 3, 0]);
    }
}

//! Domain-adversarial network with a gradient-reversal layer (Ganin &
//! Lempitsky style), the transfer mechanism behind the DTAL* baseline of
//! Kasai et al. (2019).
//!
//! Architecture: a shared ReLU encoder, a label head trained on the
//! labelled source instances, and a domain head trained to distinguish
//! source from target. The gradient of the domain loss is *reversed*
//! (scaled by `-λ`) before flowing into the encoder, pushing the encoder
//! towards domain-invariant representations.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use transer_common::{Error, FeatureMatrix, Label, Result};

use crate::logistic::sigmoid;
use crate::mlp::DenseLayer;

/// Hyper-parameters for [`GrlNet`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrlConfig {
    /// Width of the shared encoder's hidden layer.
    pub hidden: usize,
    /// Training epochs over the combined source + target stream.
    pub epochs: usize,
    /// Initial learning rate.
    pub learning_rate: f64,
    /// Gradient-reversal coefficient λ.
    pub lambda: f64,
}

impl Default for GrlConfig {
    fn default() -> Self {
        GrlConfig { hidden: 32, epochs: 30, learning_rate: 0.05, lambda: 0.5 }
    }
}

/// Domain-adversarial classifier: fit on labelled source + unlabelled
/// target, then predict match probabilities for target instances.
#[derive(Debug, Clone)]
pub struct GrlNet {
    config: GrlConfig,
    seed: u64,
    encoder: Option<DenseLayer>,
    label_head: Option<DenseLayer>,
    fitted: bool,
}

impl GrlNet {
    /// Create with explicit hyper-parameters and RNG seed.
    pub fn new(config: GrlConfig, seed: u64) -> Self {
        GrlNet { config, seed, encoder: None, label_head: None, fitted: false }
    }

    /// Train on the labelled source domain and the unlabelled target domain.
    ///
    /// # Errors
    /// Returns an error for empty inputs, mismatched feature spaces, or
    /// divergence.
    pub fn fit(&mut self, xs: &FeatureMatrix, ys: &[Label], xt: &FeatureMatrix) -> Result<()> {
        if xs.rows() == 0 || xt.rows() == 0 {
            return Err(Error::EmptyInput("GRL training data"));
        }
        if xs.rows() != ys.len() {
            return Err(Error::DimensionMismatch {
                what: "rows vs labels",
                left: xs.rows(),
                right: ys.len(),
            });
        }
        if xs.cols() != xt.cols() {
            return Err(Error::DimensionMismatch {
                what: "source vs target feature columns",
                left: xs.cols(),
                right: xt.cols(),
            });
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        let d = xs.cols();
        let h = self.config.hidden;
        let mut encoder = DenseLayer::new(d, h, true, &mut rng);
        let mut label_head = DenseLayer::new(h, 1, false, &mut rng);
        let mut domain_head = DenseLayer::new(h, 1, false, &mut rng);

        // Combined instance stream: (row source, index, is_target).
        let mut stream: Vec<(bool, usize)> =
            (0..xs.rows()).map(|i| (false, i)).chain((0..xt.rows()).map(|i| (true, i))).collect();

        for epoch in 0..self.config.epochs {
            let lr = self.config.learning_rate / (1.0 + 0.05 * epoch as f64);
            stream.shuffle(&mut rng);
            for &(is_target, i) in &stream {
                let row = if is_target { xt.row(i) } else { xs.row(i) };
                let hidden = encoder.forward(row);

                // Domain head with gradient reversal into the encoder.
                let dz = domain_head.forward(&hidden)[0];
                let dp = sigmoid(dz);
                let d_target = if is_target { 1.0 } else { 0.0 };
                let d_grad = dp - d_target;
                let grad_hidden_domain = domain_head.backward(&hidden, &[dz], &[d_grad], lr);

                // Label head on source instances only.
                let mut grad_hidden_label = vec![0.0; h];
                if !is_target {
                    let lz = label_head.forward(&hidden)[0];
                    let lp = sigmoid(lz);
                    let l_grad = lp - ys[i].as_f64();
                    grad_hidden_label = label_head.backward(&hidden, &[lz], &[l_grad], lr);
                }

                // Encoder update: label gradient flows normally, domain
                // gradient is reversed (scaled by -λ).
                let grad_hidden: Vec<f64> = grad_hidden_label
                    .iter()
                    .zip(&grad_hidden_domain)
                    .map(|(l, d)| l - self.config.lambda * d)
                    .collect();
                encoder.backward(row, &hidden, &grad_hidden, lr);
            }
        }

        if encoder.w.iter().chain(&label_head.w).any(|w| !w.is_finite()) {
            return Err(Error::TrainingFailed("GRL network diverged".into()));
        }
        self.encoder = Some(encoder);
        self.label_head = Some(label_head);
        self.fitted = true;
        Ok(())
    }

    /// Match probabilities for the rows of `x`. Before a successful
    /// [`GrlNet::fit`] the network has no weights and every probability is
    /// the uninformative 0.5.
    pub fn predict_proba(&self, x: &FeatureMatrix) -> Vec<f64> {
        match (&self.encoder, &self.label_head) {
            (Some(encoder), Some(head)) => x
                .iter_rows()
                .map(|row| {
                    sigmoid(head.forward(&encoder.forward(row)).first().copied().unwrap_or(0.0))
                })
                .collect(),
            _ => vec![0.5; x.rows()],
        }
    }

    /// Hard labels using a 0.5 threshold.
    pub fn predict(&self, x: &FeatureMatrix) -> Vec<Label> {
        self.predict_proba(x).into_iter().map(Label::from_score).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Source and shifted target sharing the class structure: matches high
    /// on feature 0, non-matches low; the target is translated by +0.1 on
    /// feature 1.
    fn shifted_domains() -> (FeatureMatrix, Vec<Label>, FeatureMatrix, Vec<Label>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut xt = Vec::new();
        let mut yt = Vec::new();
        for k in 0..40 {
            let j = (k % 10) as f64 * 0.01;
            xs.push(vec![0.85 + j, 0.4 + j]);
            ys.push(Label::Match);
            xs.push(vec![0.15 - j / 2.0, 0.45 - j]);
            ys.push(Label::NonMatch);
            xt.push(vec![0.82 + j, 0.5 + j]);
            yt.push(Label::Match);
            xt.push(vec![0.18 - j / 2.0, 0.55 - j]);
            yt.push(Label::NonMatch);
        }
        (FeatureMatrix::from_vecs(&xs).unwrap(), ys, FeatureMatrix::from_vecs(&xt).unwrap(), yt)
    }

    #[test]
    fn transfers_on_shifted_domains() {
        let (xs, ys, xt, yt) = shifted_domains();
        let mut net = GrlNet::new(GrlConfig { epochs: 60, ..Default::default() }, 5);
        net.fit(&xs, &ys, &xt).unwrap();
        let acc = net.predict(&xt).iter().zip(&yt).filter(|(a, b)| a == b).count() as f64
            / yt.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn probabilities_bounded() {
        let (xs, ys, xt, _) = shifted_domains();
        let mut net = GrlNet::new(GrlConfig::default(), 1);
        net.fit(&xs, &ys, &xt).unwrap();
        for p in net.predict_proba(&xt) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (xs, ys, xt, _) = shifted_domains();
        let mut a = GrlNet::new(GrlConfig::default(), 9);
        let mut b = GrlNet::new(GrlConfig::default(), 9);
        a.fit(&xs, &ys, &xt).unwrap();
        b.fit(&xs, &ys, &xt).unwrap();
        assert_eq!(a.predict_proba(&xt), b.predict_proba(&xt));
    }

    #[test]
    fn rejects_mismatched_inputs() {
        let (xs, ys, _, _) = shifted_domains();
        let mut net = GrlNet::new(GrlConfig::default(), 0);
        assert!(net.fit(&xs, &ys, &FeatureMatrix::empty(2)).is_err());
        assert!(net.fit(&xs, &ys[..1], &xs).is_err());
        let narrow = FeatureMatrix::from_vecs(&[vec![0.5]]).unwrap();
        assert!(net.fit(&xs, &ys, &narrow).is_err());
    }
}

//! CART decision tree with weighted Gini impurity.
//!
//! Two training engines grow bit-identical trees (see [`TreeEngine`]):
//! the default presorted engine (`crate::presorted`) sorts each feature
//! column once per tree and maintains the order by stable partition, while
//! the pinned reference engine in this module re-sorts every candidate
//! column at every node. Both share the split-scan arithmetic in
//! `crate::split`.

use transer_common::{FeatureMatrix, Label, Result};
use transer_parallel::Pool;

use crate::presorted;
use crate::split::{best_feature_split, feature_cmp, fold_best, gini, SplitCandidate, TreeEngine};
use crate::traits::{check_training_input, Classifier};

/// Hyper-parameters for [`DecisionTree`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionTreeConfig {
    /// Maximum tree depth (root has depth 0).
    pub max_depth: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum number of samples in each child of a split.
    pub min_samples_leaf: usize,
    /// Minimum weighted impurity decrease for a split to be kept.
    pub min_impurity_decrease: f64,
}

impl Default for DecisionTreeConfig {
    fn default() -> Self {
        DecisionTreeConfig {
            max_depth: 12,
            min_samples_split: 2,
            min_samples_leaf: 1,
            min_impurity_decrease: 0.0,
        }
    }
}

pub(crate) const NO_NODE: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
pub(crate) enum Node {
    Leaf { p_match: f64 },
    Split { feature: u16, threshold: f64, left: u32, right: u32 },
}

/// A CART binary classification tree; leaves store the weighted match
/// fraction, so [`Classifier::predict_proba`] returns empirical leaf
/// probabilities.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    pub(crate) config: DecisionTreeConfig,
    pub(crate) nodes: Vec<Node>,
    root: u32,
    /// Per-split feature subsampling: when `Some(k)`, each node considers a
    /// random subset of `k` features. Used by the random forest.
    pub(crate) feature_subset: Option<usize>,
    pub(crate) rng_state: u64,
    engine: TreeEngine,
    /// Explicit worker-count override for the presorted engine's split
    /// search; `None` = the global pool.
    workers: Option<usize>,
}

impl Default for DecisionTree {
    fn default() -> Self {
        DecisionTree::new(DecisionTreeConfig::default())
    }
}

impl DecisionTree {
    /// Create with explicit hyper-parameters.
    pub fn new(config: DecisionTreeConfig) -> Self {
        DecisionTree {
            config,
            nodes: Vec::new(),
            root: NO_NODE,
            feature_subset: None,
            rng_state: 0x9e3779b97f4a7c15,
            engine: TreeEngine::from_env(),
            workers: None,
        }
    }

    /// Select the training engine instead of the `TRANSER_TREE_ENGINE`
    /// default. Both engines produce bit-identical trees.
    pub fn with_engine(mut self, engine: TreeEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Pin the worker count for the presorted engine's per-feature split
    /// search instead of using the global [`Pool`] (`TRANSER_THREADS`).
    /// Results are bit-identical for every worker count.
    pub fn with_threads(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// The engine this tree trains with.
    pub fn engine(&self) -> TreeEngine {
        self.engine
    }

    pub(crate) fn pool(&self) -> Pool {
        self.workers.map_or_else(Pool::global, Pool::new)
    }

    /// Prediction state for model persistence: hyper-parameters, node
    /// arena and root id.
    pub(crate) fn persist_parts(&self) -> (&DecisionTreeConfig, &[Node], u32) {
        (&self.config, &self.nodes, self.root)
    }

    /// Rebuild a tree from persisted prediction state. Training-only state
    /// (rng stream, engine, worker override) resets to defaults: a loaded
    /// model predicts bit-identically, while refitting it starts fresh.
    pub(crate) fn from_persist_parts(
        config: DecisionTreeConfig,
        nodes: Vec<Node>,
        root: u32,
    ) -> Self {
        DecisionTree { nodes, root, ..DecisionTree::new(config) }
    }

    /// Number of nodes in the fitted tree (0 before `fit`).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the fitted tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], id: u32) -> usize {
            match nodes[id as usize] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, left).max(depth_of(nodes, right))
                }
            }
        }
        if self.root == NO_NODE {
            0
        } else {
            depth_of(&self.nodes, self.root)
        }
    }

    fn leaf_probability(&self, row: &[f64]) -> f64 {
        let mut id = self.root;
        loop {
            match self.nodes[id as usize] {
                Node::Leaf { p_match } => return p_match,
                Node::Split { feature, threshold, left, right } => {
                    id = if row[feature as usize] <= threshold { left } else { right };
                }
            }
        }
    }

    /// xorshift step for the forest's per-split feature sampling — cheap
    /// and deterministic under the configured seed.
    fn next_rand(&mut self) -> u64 {
        let mut s = self.rng_state;
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        self.rng_state = s;
        s
    }

    /// The features considered at one node, in selection order. Consumes
    /// the same number of RNG steps in both engines, which keeps their
    /// per-node feature subsets — and therefore their trees — identical.
    pub(crate) fn candidate_features(&mut self, m: usize) -> Vec<usize> {
        let mut idx = Vec::new();
        self.candidate_features_into(m, &mut idx);
        idx
    }

    /// [`Self::candidate_features`] into a caller-owned buffer — same RNG
    /// draws, same order. The presorted engine calls this once per node
    /// and reuses the allocation across the whole tree.
    pub(crate) fn candidate_features_into(&mut self, m: usize, buf: &mut Vec<usize>) {
        buf.clear();
        buf.extend(0..m);
        if let Some(k) = self.feature_subset {
            if k < m {
                // Partial Fisher-Yates over the feature indices.
                for i in 0..k {
                    let j = i + (self.next_rand() as usize) % (m - i);
                    buf.swap(i, j);
                }
                buf.truncate(k);
            }
        }
    }

    /// Forest fast path for the presorted engine: train on the bagged
    /// subset of a forest-shared presort (`presorted::ForestPresort`)
    /// instead of re-sorting a materialised bagged matrix. `y` and `w` are
    /// full-length over the original rows (`w` zero outside the bag);
    /// `counts` are the bootstrap multiplicities. Produces exactly the
    /// tree `fit_weighted` would on the selected rows.
    pub(crate) fn fit_bagged(
        &mut self,
        presort: &presorted::ForestPresort,
        y: &[Label],
        w: &[f64],
        counts: &[u32],
    ) {
        self.nodes.clear();
        self.root = presorted::grow_bagged(self, presort, y, w, counts);
    }

    /// Reference engine: re-sort every candidate column at this node.
    fn build(
        &mut self,
        x: &FeatureMatrix,
        y: &[Label],
        w: &[f64],
        indices: &[usize],
        depth: usize,
    ) -> u32 {
        let total_w: f64 = indices.iter().map(|&i| w[i]).sum();
        let match_w: f64 = indices.iter().filter(|&&i| y[i].is_match()).map(|&i| w[i]).sum();
        let p_match = if total_w > 0.0 { match_w / total_w } else { 0.5 };

        let make_leaf = |nodes: &mut Vec<Node>| {
            let id = nodes.len() as u32;
            nodes.push(Node::Leaf { p_match });
            id
        };

        if depth >= self.config.max_depth
            || indices.len() < self.config.min_samples_split
            || p_match == 0.0
            || p_match == 1.0
            || total_w <= 0.0
        {
            return make_leaf(&mut self.nodes);
        }

        let parent_impurity = gini(p_match);
        let mut best: Option<(usize, SplitCandidate)> = None;
        let mut column: Vec<(f64, f64, bool)> = Vec::with_capacity(indices.len());
        let candidates = self.candidate_features(x.cols());
        transer_trace::counter("ml.split_scans", candidates.len() as u64);
        transer_trace::observe("ml.split_depth", depth as f64);
        for feature in candidates {
            column.clear();
            column.extend(indices.iter().map(|&i| (x.row(i)[feature], w[i], y[i].is_match())));
            // Stable sort under the NaN-safe total order: ties keep the
            // ascending-row order of `indices` — the deterministic
            // (value, row) ordering contract of `crate::split`.
            column.sort_by(|a, b| feature_cmp(a.0, b.0));
            let cand = best_feature_split(
                column.len(),
                |k| column[k],
                total_w,
                match_w,
                parent_impurity,
                &self.config,
            );
            fold_best(&mut best, feature, cand);
        }

        let Some((feature, SplitCandidate { threshold, .. })) = best else {
            return make_leaf(&mut self.nodes);
        };

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| x.row(i)[feature] <= threshold);
        debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());

        let id = self.nodes.len() as u32;
        self.nodes.push(Node::Split {
            feature: feature as u16,
            threshold,
            left: NO_NODE,
            right: NO_NODE,
        });
        let left = self.build(x, y, w, &left_idx, depth + 1);
        let right = self.build(x, y, w, &right_idx, depth + 1);
        if let Node::Split { left: l, right: r, .. } = &mut self.nodes[id as usize] {
            *l = left;
            *r = right;
        }
        id
    }
}

impl Classifier for DecisionTree {
    fn name(&self) -> &'static str {
        "dtree"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn fit_weighted(
        &mut self,
        x: &FeatureMatrix,
        y: &[Label],
        weights: Option<&[f64]>,
    ) -> Result<()> {
        check_training_input(x, y, weights)?;
        let w: Vec<f64> = match weights {
            Some(w) => w.to_vec(),
            None => vec![1.0; y.len()],
        };
        self.nodes.clear();
        self.root = match self.engine {
            TreeEngine::Presorted => presorted::grow(self, x, y, &w),
            TreeEngine::Reference => {
                let indices: Vec<usize> = (0..x.rows()).collect();
                self.build(x, y, &w, &indices, 0)
            }
        };
        Ok(())
    }

    fn predict_proba(&self, x: &FeatureMatrix) -> Vec<f64> {
        if self.root == NO_NODE {
            return vec![0.5; x.rows()]; // unfitted: uninformative prior
        }
        x.iter_rows().map(|row| self.leaf_probability(row)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (FeatureMatrix, Vec<Label>) {
        // XOR — not linearly separable; a depth-2 tree nails it.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for &(a, b, m) in
            &[(0.1, 0.1, false), (0.9, 0.9, false), (0.1, 0.9, true), (0.9, 0.1, true)]
        {
            for k in 0..5 {
                let j = k as f64 * 0.01;
                rows.push(vec![a + j, b + j]);
                labels.push(Label::from_bool(m));
            }
        }
        (FeatureMatrix::from_vecs(&rows).unwrap(), labels)
    }

    fn both_engines() -> [DecisionTree; 2] {
        [
            DecisionTree::default().with_engine(TreeEngine::Presorted),
            DecisionTree::default().with_engine(TreeEngine::Reference),
        ]
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        for mut t in both_engines() {
            t.fit(&x, &y).unwrap();
            assert_eq!(t.predict(&x), y, "{}", t.engine().name());
            assert!(t.depth() >= 2);
        }
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x = FeatureMatrix::from_vecs(&[vec![0.1], vec![0.2], vec![0.3]]).unwrap();
        let y = vec![Label::Match; 3];
        for mut t in both_engines() {
            t.fit(&x, &y).unwrap();
            assert_eq!(t.node_count(), 1);
            assert_eq!(t.predict_proba(&x), vec![1.0; 3]);
        }
    }

    #[test]
    fn leaf_probabilities_are_fractions() {
        // One ambiguous feature value with 3 matches and 1 non-match: the
        // tree cannot split it, so the leaf stores 0.75.
        let x = FeatureMatrix::from_vecs(&vec![vec![0.5]; 4]).unwrap();
        let y = vec![Label::Match, Label::Match, Label::Match, Label::NonMatch];
        for mut t in both_engines() {
            t.fit(&x, &y).unwrap();
            let p = t.predict_proba(&x);
            assert!((p[0] - 0.75).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_tilt_ambiguous_leaves() {
        let x = FeatureMatrix::from_vecs(&[vec![0.5], vec![0.5]]).unwrap();
        let y = vec![Label::Match, Label::NonMatch];
        for mut t in both_engines() {
            t.fit_weighted(&x, &y, Some(&[3.0, 1.0])).unwrap();
            assert!((t.predict_proba(&x)[0] - 0.75).abs() < 1e-12);
        }
    }

    #[test]
    fn max_depth_bounds_tree() {
        let (x, y) = xor_data();
        for engine in [TreeEngine::Presorted, TreeEngine::Reference] {
            let mut t =
                DecisionTree::new(DecisionTreeConfig { max_depth: 1, ..Default::default() })
                    .with_engine(engine);
            t.fit(&x, &y).unwrap();
            assert!(t.depth() <= 1);
        }
    }

    #[test]
    fn min_samples_leaf_respected() {
        let x = FeatureMatrix::from_vecs(&[vec![0.0], vec![0.3], vec![0.7], vec![1.0]]).unwrap();
        let y = vec![Label::NonMatch, Label::NonMatch, Label::Match, Label::Match];
        for engine in [TreeEngine::Presorted, TreeEngine::Reference] {
            let mut t =
                DecisionTree::new(DecisionTreeConfig { min_samples_leaf: 2, ..Default::default() })
                    .with_engine(engine);
            t.fit(&x, &y).unwrap();
            // Only the middle split (2|2) is legal.
            assert_eq!(t.depth(), 1);
            assert_eq!(t.predict(&x), y);
        }
    }

    #[test]
    fn nan_column_is_harmless_and_position_independent() {
        // Regression for the NaN-unsafe seed comparator: a NaN-polluted
        // column (mixed quiet and negative NaNs) must neither poison the
        // fit nor make the tree depend on where the NaN rows sit in the
        // input. The informative column still separates the classes.
        let neg_nan = -f64::NAN;
        let rows = [
            (vec![0.1, f64::NAN], Label::NonMatch),
            (vec![0.2, 0.4], Label::NonMatch),
            (vec![0.15, neg_nan], Label::NonMatch),
            (vec![0.8, 0.5], Label::Match),
            (vec![0.9, f64::NAN], Label::Match),
            (vec![0.85, 0.6], Label::Match),
        ];
        let probe = FeatureMatrix::from_vecs(&[vec![0.12, f64::NAN], vec![0.87, neg_nan]]).unwrap();
        let fit = |order: &[usize], engine| {
            let x = FeatureMatrix::from_vecs(
                &order.iter().map(|&i| rows[i].0.clone()).collect::<Vec<_>>(),
            )
            .unwrap();
            let y: Vec<Label> = order.iter().map(|&i| rows[i].1).collect();
            let mut t = DecisionTree::default().with_engine(engine);
            t.fit(&x, &y).unwrap();
            t.predict_proba(&probe)
        };
        let expect = fit(&[0, 1, 2, 3, 4, 5], TreeEngine::Reference);
        assert!(expect.iter().all(|p| p.is_finite()), "NaN leaked into leaf probabilities");
        assert_eq!(expect, vec![0.0, 1.0], "informative column not used");
        for engine in [TreeEngine::Presorted, TreeEngine::Reference] {
            for order in [[0, 1, 2, 3, 4, 5], [4, 2, 0, 5, 1, 3], [5, 4, 3, 2, 1, 0]] {
                let got = fit(&order, engine);
                for (a, b) in expect.iter().zip(&got) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "engine={} order={order:?}",
                        engine.name()
                    );
                }
            }
        }
    }

    #[test]
    fn rejects_empty() {
        let mut t = DecisionTree::default();
        assert!(t.fit(&FeatureMatrix::empty(1), &[]).is_err());
    }
}

//! CART decision tree with weighted Gini impurity.

use transer_common::{FeatureMatrix, Label, Result};

use crate::traits::{check_training_input, Classifier};

/// Hyper-parameters for [`DecisionTree`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionTreeConfig {
    /// Maximum tree depth (root has depth 0).
    pub max_depth: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum number of samples in each child of a split.
    pub min_samples_leaf: usize,
    /// Minimum weighted impurity decrease for a split to be kept.
    pub min_impurity_decrease: f64,
}

impl Default for DecisionTreeConfig {
    fn default() -> Self {
        DecisionTreeConfig {
            max_depth: 12,
            min_samples_split: 2,
            min_samples_leaf: 1,
            min_impurity_decrease: 0.0,
        }
    }
}

const NO_NODE: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
enum Node {
    Leaf {
        p_match: f64,
    },
    Split {
        feature: u16,
        threshold: f64,
        left: u32,
        right: u32,
    },
}

/// A CART binary classification tree; leaves store the weighted match
/// fraction, so [`Classifier::predict_proba`] returns empirical leaf
/// probabilities.
#[derive(Debug, Clone, Default)]
pub struct DecisionTree {
    config: DecisionTreeConfig,
    nodes: Vec<Node>,
    root: u32,
    /// Per-split feature subsampling: when `Some(k)`, each node considers a
    /// random subset of `k` features. Used by the random forest.
    pub(crate) feature_subset: Option<usize>,
    pub(crate) rng_state: u64,
}

impl DecisionTree {
    /// Create with explicit hyper-parameters.
    pub fn new(config: DecisionTreeConfig) -> Self {
        DecisionTree { config, nodes: Vec::new(), root: NO_NODE, feature_subset: None, rng_state: 0x9e3779b97f4a7c15 }
    }

    /// Number of nodes in the fitted tree (0 before `fit`).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the fitted tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], id: u32) -> usize {
            match nodes[id as usize] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, left).max(depth_of(nodes, right))
                }
            }
        }
        if self.root == NO_NODE {
            0
        } else {
            depth_of(&self.nodes, self.root)
        }
    }

    fn leaf_probability(&self, row: &[f64]) -> f64 {
        let mut id = self.root;
        loop {
            match self.nodes[id as usize] {
                Node::Leaf { p_match } => return p_match,
                Node::Split { feature, threshold, left, right } => {
                    id = if row[feature as usize] <= threshold { left } else { right };
                }
            }
        }
    }

    /// xorshift step for the forest's per-split feature sampling — cheap
    /// and deterministic under the configured seed.
    fn next_rand(&mut self) -> u64 {
        let mut s = self.rng_state;
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        self.rng_state = s;
        s
    }

    fn candidate_features(&mut self, m: usize) -> Vec<usize> {
        match self.feature_subset {
            Some(k) if k < m => {
                // Partial Fisher-Yates over the feature indices.
                let mut idx: Vec<usize> = (0..m).collect();
                for i in 0..k {
                    let j = i + (self.next_rand() as usize) % (m - i);
                    idx.swap(i, j);
                }
                idx.truncate(k);
                idx
            }
            _ => (0..m).collect(),
        }
    }

    fn build(
        &mut self,
        x: &FeatureMatrix,
        y: &[Label],
        w: &[f64],
        indices: &[usize],
        depth: usize,
    ) -> u32 {
        let total_w: f64 = indices.iter().map(|&i| w[i]).sum();
        let match_w: f64 = indices.iter().filter(|&&i| y[i].is_match()).map(|&i| w[i]).sum();
        let p_match = if total_w > 0.0 { match_w / total_w } else { 0.5 };

        let make_leaf = |nodes: &mut Vec<Node>| {
            let id = nodes.len() as u32;
            nodes.push(Node::Leaf { p_match });
            id
        };

        if depth >= self.config.max_depth
            || indices.len() < self.config.min_samples_split
            || p_match == 0.0
            || p_match == 1.0
            || total_w <= 0.0
        {
            return make_leaf(&mut self.nodes);
        }

        let parent_impurity = gini(p_match);
        // Best split: primarily the largest impurity decrease; among
        // (near-)equal decreases, the most balanced split. The balance
        // tie-break matters for XOR-like structure where every root split
        // has zero gain — a balanced zero-gain split lets the children
        // separate the classes, while a degenerate one recurses uselessly.
        let mut best: Option<(usize, f64, f64, usize)> = None; // (feature, threshold, decrease, balance)
        let mut column: Vec<(f64, f64, bool)> = Vec::with_capacity(indices.len());
        for feature in self.candidate_features(x.cols()) {
            column.clear();
            column.extend(indices.iter().map(|&i| (x.row(i)[feature], w[i], y[i].is_match())));
            column.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

            let mut left_w = 0.0;
            let mut left_match = 0.0;
            let mut left_n = 0usize;
            for k in 0..column.len() - 1 {
                let (v, wi, is_match) = column[k];
                left_w += wi;
                if is_match {
                    left_match += wi;
                }
                left_n += 1;
                let next_v = column[k + 1].0;
                if next_v <= v {
                    continue; // no threshold separates equal values
                }
                let right_n = column.len() - left_n;
                if left_n < self.config.min_samples_leaf || right_n < self.config.min_samples_leaf {
                    continue;
                }
                let right_w = total_w - left_w;
                if left_w <= 0.0 || right_w <= 0.0 {
                    continue;
                }
                let right_match = match_w - left_match;
                let impurity = (left_w * gini(left_match / left_w)
                    + right_w * gini(right_match / right_w))
                    / total_w;
                let decrease = parent_impurity - impurity;
                let balance = left_n.min(right_n);
                const EPS: f64 = 1e-12;
                if decrease + EPS >= self.config.min_impurity_decrease
                    && best.is_none_or(|(_, _, d, bal)| {
                        decrease > d + EPS || ((decrease - d).abs() <= EPS && balance > bal)
                    })
                {
                    // The midpoint can round up to exactly `next_v` when the
                    // two values are adjacent floats; fall back to `v` so the
                    // `<= threshold` partition always separates both sides.
                    let mid = 0.5 * (v + next_v);
                    let threshold = if mid < next_v { mid } else { v };
                    best = Some((feature, threshold, decrease, balance));
                }
            }
        }

        let Some((feature, threshold, _, _)) = best else {
            return make_leaf(&mut self.nodes);
        };

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| x.row(i)[feature] <= threshold);
        debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());

        let id = self.nodes.len() as u32;
        self.nodes.push(Node::Split { feature: feature as u16, threshold, left: NO_NODE, right: NO_NODE });
        let left = self.build(x, y, w, &left_idx, depth + 1);
        let right = self.build(x, y, w, &right_idx, depth + 1);
        if let Node::Split { left: l, right: r, .. } = &mut self.nodes[id as usize] {
            *l = left;
            *r = right;
        }
        id
    }
}

#[inline]
fn gini(p: f64) -> f64 {
    2.0 * p * (1.0 - p)
}

impl Classifier for DecisionTree {
    fn name(&self) -> &'static str {
        "dtree"
    }

    fn fit_weighted(
        &mut self,
        x: &FeatureMatrix,
        y: &[Label],
        weights: Option<&[f64]>,
    ) -> Result<()> {
        check_training_input(x, y, weights)?;
        let w: Vec<f64> = match weights {
            Some(w) => w.to_vec(),
            None => vec![1.0; y.len()],
        };
        self.nodes.clear();
        let indices: Vec<usize> = (0..x.rows()).collect();
        self.root = self.build(x, y, &w, &indices, 0);
        Ok(())
    }

    fn predict_proba(&self, x: &FeatureMatrix) -> Vec<f64> {
        assert!(self.root != NO_NODE, "predict before fit");
        x.iter_rows().map(|row| self.leaf_probability(row)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (FeatureMatrix, Vec<Label>) {
        // XOR — not linearly separable; a depth-2 tree nails it.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for &(a, b, m) in
            &[(0.1, 0.1, false), (0.9, 0.9, false), (0.1, 0.9, true), (0.9, 0.1, true)]
        {
            for k in 0..5 {
                let j = k as f64 * 0.01;
                rows.push(vec![a + j, b + j]);
                labels.push(Label::from_bool(m));
            }
        }
        (FeatureMatrix::from_vecs(&rows).unwrap(), labels)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let mut t = DecisionTree::default();
        t.fit(&x, &y).unwrap();
        assert_eq!(t.predict(&x), y);
        assert!(t.depth() >= 2);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x = FeatureMatrix::from_vecs(&[vec![0.1], vec![0.2], vec![0.3]]).unwrap();
        let y = vec![Label::Match; 3];
        let mut t = DecisionTree::default();
        t.fit(&x, &y).unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict_proba(&x), vec![1.0; 3]);
    }

    #[test]
    fn leaf_probabilities_are_fractions() {
        // One ambiguous feature value with 3 matches and 1 non-match: the
        // tree cannot split it, so the leaf stores 0.75.
        let x = FeatureMatrix::from_vecs(&vec![vec![0.5]; 4]).unwrap();
        let y = vec![Label::Match, Label::Match, Label::Match, Label::NonMatch];
        let mut t = DecisionTree::default();
        t.fit(&x, &y).unwrap();
        let p = t.predict_proba(&x);
        assert!((p[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn weights_tilt_ambiguous_leaves() {
        let x = FeatureMatrix::from_vecs(&[vec![0.5], vec![0.5]]).unwrap();
        let y = vec![Label::Match, Label::NonMatch];
        let mut t = DecisionTree::default();
        t.fit_weighted(&x, &y, Some(&[3.0, 1.0])).unwrap();
        assert!((t.predict_proba(&x)[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn max_depth_bounds_tree() {
        let (x, y) = xor_data();
        let mut t = DecisionTree::new(DecisionTreeConfig { max_depth: 1, ..Default::default() });
        t.fit(&x, &y).unwrap();
        assert!(t.depth() <= 1);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let x = FeatureMatrix::from_vecs(&[vec![0.0], vec![0.3], vec![0.7], vec![1.0]]).unwrap();
        let y = vec![Label::NonMatch, Label::NonMatch, Label::Match, Label::Match];
        let mut t = DecisionTree::new(DecisionTreeConfig {
            min_samples_leaf: 2,
            ..Default::default()
        });
        t.fit(&x, &y).unwrap();
        // Only the middle split (2|2) is legal.
        assert_eq!(t.depth(), 1);
        assert_eq!(t.predict(&x), y);
    }

    #[test]
    fn rejects_empty() {
        let mut t = DecisionTree::default();
        assert!(t.fit(&FeatureMatrix::empty(1), &[]).is_err());
    }
}

//! Standardisation (z-scoring) of feature matrices, needed by the
//! feature-transformation baselines (TCA, Coral) that assume roughly
//! centred inputs.

use transer_common::{Error, FeatureMatrix, Result};

/// Per-column standard scaler: `x' = (x − mean) / std`.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fit means and standard deviations on `x`.
    ///
    /// Columns with (near-)zero variance get `std = 1` so that transforming
    /// never divides by zero.
    ///
    /// # Errors
    /// Returns [`Error::EmptyInput`] when `x` has no rows.
    pub fn fit(x: &FeatureMatrix) -> Result<Self> {
        let means = x.column_means().ok_or(Error::EmptyInput("scaler input"))?;
        let n = x.rows() as f64;
        let mut vars = vec![0.0; x.cols()];
        for row in x.iter_rows() {
            for ((v, &xv), &m) in vars.iter_mut().zip(row).zip(&means) {
                *v += (xv - m) * (xv - m);
            }
        }
        let stds = vars
            .iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Ok(StandardScaler { means, stds })
    }

    /// Apply the fitted transform.
    ///
    /// # Panics
    /// Panics when the column count differs from the fitted matrix.
    pub fn transform(&self, x: &FeatureMatrix) -> FeatureMatrix {
        assert_eq!(x.cols(), self.means.len(), "column count mismatch");
        let mut out = FeatureMatrix::empty(x.cols());
        let mut buf = vec![0.0; x.cols()];
        for row in x.iter_rows() {
            for (i, b) in buf.iter_mut().enumerate() {
                *b = (row[i] - self.means[i]) / self.stds[i];
            }
            out.push_row(&buf);
        }
        out
    }

    /// Invert the transform.
    ///
    /// # Panics
    /// Panics when the column count differs from the fitted matrix.
    pub fn inverse_transform(&self, x: &FeatureMatrix) -> FeatureMatrix {
        assert_eq!(x.cols(), self.means.len(), "column count mismatch");
        let mut out = FeatureMatrix::empty(x.cols());
        let mut buf = vec![0.0; x.cols()];
        for row in x.iter_rows() {
            for (i, b) in buf.iter_mut().enumerate() {
                *b = row[i] * self.stds[i] + self.means[i];
            }
            out.push_row(&buf);
        }
        out
    }

    /// Fitted column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Fitted column standard deviations.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardises_columns() {
        let x =
            FeatureMatrix::from_vecs(&[vec![0.0, 10.0], vec![2.0, 20.0], vec![4.0, 30.0]]).unwrap();
        let s = StandardScaler::fit(&x).unwrap();
        let t = s.transform(&x);
        let means = t.column_means().unwrap();
        assert!(means.iter().all(|m| m.abs() < 1e-12));
        // Unit population variance per column.
        let mut var0 = 0.0;
        for row in t.iter_rows() {
            var0 += row[0] * row[0];
        }
        assert!((var0 / 3.0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn roundtrip() {
        let x = FeatureMatrix::from_vecs(&[vec![0.1, 0.9], vec![0.7, 0.3]]).unwrap();
        let s = StandardScaler::fit(&x).unwrap();
        let back = s.inverse_transform(&s.transform(&x));
        for (a, b) in x.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_column_survives() {
        let x = FeatureMatrix::from_vecs(&[vec![0.5, 1.0], vec![0.5, 2.0]]).unwrap();
        let s = StandardScaler::fit(&x).unwrap();
        let t = s.transform(&x);
        assert!(t.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(t.row(0)[0], 0.0);
    }

    #[test]
    fn empty_rejected() {
        assert!(StandardScaler::fit(&FeatureMatrix::empty(2)).is_err());
    }
}

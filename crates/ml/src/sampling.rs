//! Sampling utilities: class-ratio under-sampling (Algorithm 1's
//! `GetBalancedData`), stratified sub-sampling (the Fig. 6 labelled-
//! fraction sweeps) and the bootstrap draw shared by the forest baggers.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use transer_common::Label;

/// Draw a bootstrap sample of `base.len()` rows with replacement and fold
/// the multiplicities into per-row weights, so duplicated rows are never
/// materialised: returns the distinct drawn row indices (ascending) and
/// the matching weights `base[i] × count[i]`.
///
/// Fitting a weighted-sample-capable classifier on `(bag, weights)` is
/// equivalent to fitting it on the literally duplicated rows — for the
/// decision trees this is exact as long as the bootstrap counts are the
/// only weights in play, because integer-valued weight sums are exact in
/// `f64` (pinned by `weighted_fit_equals_duplicated_row_fit` below).
///
/// `counts` is caller-provided scratch (one slot per row, any contents) so
/// per-tree bagging loops can reuse one allocation.
///
/// # Panics
/// Panics when `counts.len() != base.len()`.
pub fn bootstrap_bag(rng: &mut StdRng, base: &[f64], counts: &mut [u32]) -> (Vec<usize>, Vec<f64>) {
    let n = base.len();
    assert_eq!(counts.len(), n, "counts scratch must match base length");
    counts.iter_mut().for_each(|c| *c = 0);
    for _ in 0..n {
        counts[rng.random_range(0..n)] += 1;
    }
    let bag: Vec<usize> = (0..n).filter(|&i| counts[i] > 0).collect();
    let weights: Vec<f64> = bag.iter().map(|&i| base[i] * counts[i] as f64).collect();
    (bag, weights)
}

/// Under-sample non-matches so that the non-match : match ratio is at most
/// `ratio` (the paper uses 1:3 match:non-match, i.e. `ratio = 3`). All
/// matches are kept; returned indices are sorted ascending for determinism.
///
/// When there are already fewer than `ratio × matches` non-matches — or no
/// matches at all — every index is returned unchanged.
pub fn undersample_to_ratio(y: &[Label], ratio: f64, seed: u64) -> Vec<usize> {
    assert!(ratio > 0.0, "ratio must be positive");
    let matches: Vec<usize> = (0..y.len()).filter(|&i| y[i].is_match()).collect();
    let non_matches: Vec<usize> = (0..y.len()).filter(|&i| !y[i].is_match()).collect();
    if matches.is_empty() {
        return (0..y.len()).collect();
    }
    let keep_non = ((matches.len() as f64 * ratio).round() as usize).min(non_matches.len());
    if keep_non == non_matches.len() {
        return (0..y.len()).collect();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool = non_matches;
    pool.shuffle(&mut rng);
    pool.truncate(keep_non);
    let mut out = matches;
    out.extend(pool);
    out.sort_unstable();
    out
}

/// Stratified sub-sample: keep `fraction` of each class, at least one
/// instance per non-empty class. Returned indices are sorted ascending.
pub fn stratified_fraction(y: &[Label], fraction: f64, seed: u64) -> Vec<usize> {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for class in [Label::Match, Label::NonMatch] {
        let mut idx: Vec<usize> = (0..y.len()).filter(|&i| y[i] == class).collect();
        if idx.is_empty() {
            continue;
        }
        let keep = ((idx.len() as f64 * fraction).round() as usize)
            .clamp(usize::from(fraction > 0.0), idx.len());
        idx.shuffle(&mut rng);
        idx.truncate(keep);
        out.extend(idx);
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(matches: usize, non_matches: usize) -> Vec<Label> {
        let mut y = vec![Label::Match; matches];
        y.extend(vec![Label::NonMatch; non_matches]);
        y
    }

    #[test]
    fn undersamples_to_ratio() {
        let y = labels(10, 100);
        let kept = undersample_to_ratio(&y, 3.0, 42);
        let m = kept.iter().filter(|&&i| y[i].is_match()).count();
        let n = kept.len() - m;
        assert_eq!(m, 10, "all matches kept");
        assert_eq!(n, 30, "1:3 ratio");
        // Sorted + unique.
        assert!(kept.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn already_balanced_untouched() {
        let y = labels(10, 20);
        let kept = undersample_to_ratio(&y, 3.0, 0);
        assert_eq!(kept.len(), 30);
    }

    #[test]
    fn no_matches_returns_everything() {
        let y = labels(0, 50);
        assert_eq!(undersample_to_ratio(&y, 3.0, 0).len(), 50);
    }

    #[test]
    fn deterministic_per_seed() {
        let y = labels(5, 200);
        assert_eq!(undersample_to_ratio(&y, 3.0, 7), undersample_to_ratio(&y, 3.0, 7));
        assert_ne!(undersample_to_ratio(&y, 3.0, 7), undersample_to_ratio(&y, 3.0, 8));
    }

    #[test]
    fn stratified_preserves_class_shares() {
        let y = labels(40, 160);
        let kept = stratified_fraction(&y, 0.25, 3);
        let m = kept.iter().filter(|&&i| y[i].is_match()).count();
        assert_eq!(m, 10);
        assert_eq!(kept.len() - m, 40);
    }

    #[test]
    fn stratified_full_and_empty() {
        let y = labels(3, 7);
        assert_eq!(stratified_fraction(&y, 1.0, 0).len(), 10);
        assert!(stratified_fraction(&y, 0.0, 0).is_empty());
    }

    #[test]
    fn stratified_keeps_at_least_one() {
        let y = labels(1, 1000);
        let kept = stratified_fraction(&y, 0.01, 0);
        assert!(kept.iter().any(|&i| y[i].is_match()));
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn zero_ratio_panics() {
        undersample_to_ratio(&labels(1, 1), 0.0, 0);
    }

    #[test]
    fn bootstrap_bag_draws_n_with_replacement() {
        let base = vec![1.0; 64];
        let mut counts = vec![0u32; 64];
        let mut rng = StdRng::seed_from_u64(5);
        let (bag, weights) = bootstrap_bag(&mut rng, &base, &mut counts);
        assert_eq!(bag.len(), weights.len());
        assert!(bag.windows(2).all(|w| w[0] < w[1]), "ascending distinct rows");
        // n draws in total, multiplicities folded into the weights.
        assert_eq!(weights.iter().sum::<f64>(), 64.0);
        assert!(bag.len() < 64, "with replacement some rows repeat");
        // Scratch contents must not matter.
        let mut dirty = vec![9u32; 64];
        let mut rng2 = StdRng::seed_from_u64(5);
        assert_eq!(bootstrap_bag(&mut rng2, &base, &mut dirty), (bag, weights));
    }

    #[test]
    fn bootstrap_bag_scales_base_weights() {
        let base = vec![0.5; 8];
        let mut counts = vec![0u32; 8];
        let mut rng = StdRng::seed_from_u64(1);
        let (bag, weights) = bootstrap_bag(&mut rng, &base, &mut counts);
        for (&i, &w) in bag.iter().zip(&weights) {
            assert_eq!(w, 0.5 * counts[i] as f64);
        }
    }

    #[test]
    #[should_panic(expected = "counts scratch")]
    fn bootstrap_bag_rejects_bad_scratch() {
        let mut rng = StdRng::seed_from_u64(0);
        bootstrap_bag(&mut rng, &[1.0; 4], &mut [0u32; 3]);
    }

    /// The contract `bootstrap_bag` relies on: fitting a tree with
    /// integer multiplicity weights is bit-identical to fitting it on the
    /// duplicated rows (values distinct, so no tie-break or
    /// min-samples-leaf asymmetry between the two encodings).
    #[test]
    fn weighted_fit_equals_duplicated_row_fit() {
        use crate::tree::DecisionTree;
        use crate::Classifier;
        use transer_common::FeatureMatrix;

        let mut rng = StdRng::seed_from_u64(23);
        let n = 40;
        let rows: Vec<Vec<f64>> =
            (0..n).map(|_| vec![rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)]).collect();
        let y: Vec<Label> = rows
            .iter()
            .map(|r| if r[0] + 0.3 * r[1] > 0.6 { Label::Match } else { Label::NonMatch })
            .collect();
        let counts: Vec<u32> = (0..n).map(|_| rng.random_range(1..4)).collect();

        let weighted_x = FeatureMatrix::from_vecs(&rows).unwrap();
        let weights: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        let mut dup_rows = Vec::new();
        let mut dup_y = Vec::new();
        for (i, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                dup_rows.push(rows[i].clone());
                dup_y.push(y[i]);
            }
        }
        let dup_x = FeatureMatrix::from_vecs(&dup_rows).unwrap();

        let probes = FeatureMatrix::from_vecs(
            &(0..25).map(|k| vec![k as f64 / 24.0, (24 - k) as f64 / 24.0]).collect::<Vec<_>>(),
        )
        .unwrap();
        for engine in [crate::TreeEngine::Reference, crate::TreeEngine::Presorted] {
            let mut weighted = DecisionTree::default().with_engine(engine);
            weighted.fit_weighted(&weighted_x, &y, Some(&weights)).unwrap();
            let mut duplicated = DecisionTree::default().with_engine(engine);
            duplicated.fit_weighted(&dup_x, &dup_y, None).unwrap();
            let pw = weighted.predict_proba(&probes);
            let pd = duplicated.predict_proba(&probes);
            for (a, b) in pw.iter().zip(&pd) {
                assert_eq!(a.to_bits(), b.to_bits(), "engine={}", engine.name());
            }
        }
    }
}

//! Sampling utilities: class-ratio under-sampling (Algorithm 1's
//! `GetBalancedData`) and stratified sub-sampling (the Fig. 6 labelled-
//! fraction sweeps).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use transer_common::Label;

/// Under-sample non-matches so that the non-match : match ratio is at most
/// `ratio` (the paper uses 1:3 match:non-match, i.e. `ratio = 3`). All
/// matches are kept; returned indices are sorted ascending for determinism.
///
/// When there are already fewer than `ratio × matches` non-matches — or no
/// matches at all — every index is returned unchanged.
pub fn undersample_to_ratio(y: &[Label], ratio: f64, seed: u64) -> Vec<usize> {
    assert!(ratio > 0.0, "ratio must be positive");
    let matches: Vec<usize> = (0..y.len()).filter(|&i| y[i].is_match()).collect();
    let non_matches: Vec<usize> = (0..y.len()).filter(|&i| !y[i].is_match()).collect();
    if matches.is_empty() {
        return (0..y.len()).collect();
    }
    let keep_non = ((matches.len() as f64 * ratio).round() as usize).min(non_matches.len());
    if keep_non == non_matches.len() {
        return (0..y.len()).collect();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool = non_matches;
    pool.shuffle(&mut rng);
    pool.truncate(keep_non);
    let mut out = matches;
    out.extend(pool);
    out.sort_unstable();
    out
}

/// Stratified sub-sample: keep `fraction` of each class, at least one
/// instance per non-empty class. Returned indices are sorted ascending.
pub fn stratified_fraction(y: &[Label], fraction: f64, seed: u64) -> Vec<usize> {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for class in [Label::Match, Label::NonMatch] {
        let mut idx: Vec<usize> = (0..y.len()).filter(|&i| y[i] == class).collect();
        if idx.is_empty() {
            continue;
        }
        let keep = ((idx.len() as f64 * fraction).round() as usize).clamp(
            usize::from(fraction > 0.0),
            idx.len(),
        );
        idx.shuffle(&mut rng);
        idx.truncate(keep);
        out.extend(idx);
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(matches: usize, non_matches: usize) -> Vec<Label> {
        let mut y = vec![Label::Match; matches];
        y.extend(vec![Label::NonMatch; non_matches]);
        y
    }

    #[test]
    fn undersamples_to_ratio() {
        let y = labels(10, 100);
        let kept = undersample_to_ratio(&y, 3.0, 42);
        let m = kept.iter().filter(|&&i| y[i].is_match()).count();
        let n = kept.len() - m;
        assert_eq!(m, 10, "all matches kept");
        assert_eq!(n, 30, "1:3 ratio");
        // Sorted + unique.
        assert!(kept.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn already_balanced_untouched() {
        let y = labels(10, 20);
        let kept = undersample_to_ratio(&y, 3.0, 0);
        assert_eq!(kept.len(), 30);
    }

    #[test]
    fn no_matches_returns_everything() {
        let y = labels(0, 50);
        assert_eq!(undersample_to_ratio(&y, 3.0, 0).len(), 50);
    }

    #[test]
    fn deterministic_per_seed() {
        let y = labels(5, 200);
        assert_eq!(undersample_to_ratio(&y, 3.0, 7), undersample_to_ratio(&y, 3.0, 7));
        assert_ne!(undersample_to_ratio(&y, 3.0, 7), undersample_to_ratio(&y, 3.0, 8));
    }

    #[test]
    fn stratified_preserves_class_shares() {
        let y = labels(40, 160);
        let kept = stratified_fraction(&y, 0.25, 3);
        let m = kept.iter().filter(|&&i| y[i].is_match()).count();
        assert_eq!(m, 10);
        assert_eq!(kept.len() - m, 40);
    }

    #[test]
    fn stratified_full_and_empty() {
        let y = labels(3, 7);
        assert_eq!(stratified_fraction(&y, 1.0, 0).len(), 10);
        assert!(stratified_fraction(&y, 0.0, 0).is_empty());
    }

    #[test]
    fn stratified_keeps_at_least_one() {
        let y = labels(1, 1000);
        let kept = stratified_fraction(&y, 0.01, 0);
        assert!(kept.iter().any(|&i| y[i].is_match()));
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn zero_ratio_panics() {
        undersample_to_ratio(&labels(1, 1), 0.0, 0);
    }
}

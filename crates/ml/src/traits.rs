//! The classifier abstraction shared by TransER and every baseline.

use transer_common::{FeatureMatrix, Label, Result};

use crate::{DecisionTree, LinearSvm, LogisticRegression, Mlp, RandomForest, TreeEngine};

/// A binary match / non-match classifier over similarity feature vectors.
///
/// Implementations must provide calibrated match probabilities: TransER's
/// pseudo-label generator (GEN) filters target instances on the confidence
/// `max(p, 1 - p)` of the predicted class, so a classifier whose scores are
/// not probability-like would starve the final TCL phase.
///
/// ```
/// use transer_common::{FeatureMatrix, Label};
/// use transer_ml::{Classifier, ClassifierKind};
///
/// let x = FeatureMatrix::from_vecs(&[vec![0.95, 0.9], vec![0.1, 0.05]]).unwrap();
/// let y = vec![Label::Match, Label::NonMatch];
/// let mut clf = ClassifierKind::LogisticRegression.build(0);
/// clf.fit(&x, &y).unwrap();
/// assert_eq!(clf.predict(&x), y);
/// ```
pub trait Classifier: Send {
    /// Short human-readable name (`"svm"`, `"rf"`, ...).
    fn name(&self) -> &'static str;

    /// The concrete model behind the trait object — the downcast hook used
    /// by model persistence (`PersistedModel::from_classifier`) to save a
    /// trained classifier that only exists as a `Box<dyn Classifier>`.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Fit on a feature matrix and aligned labels, with optional per-sample
    /// weights (uniform when `None`).
    ///
    /// # Errors
    /// Returns an error for empty or mis-shaped training data, or when
    /// training degenerates.
    fn fit_weighted(
        &mut self,
        x: &FeatureMatrix,
        y: &[Label],
        weights: Option<&[f64]>,
    ) -> Result<()>;

    /// Fit with uniform sample weights.
    ///
    /// # Errors
    /// See [`Classifier::fit_weighted`].
    fn fit(&mut self, x: &FeatureMatrix, y: &[Label]) -> Result<()> {
        self.fit_weighted(x, y, None)
    }

    /// Probability of the *match* class for each row, in `[0, 1]`.
    ///
    /// Before a successful `fit` every implementation returns the
    /// uninformative prior 0.5 for each row — never a panic — so
    /// degradation paths can always ask for a prediction.
    fn predict_proba(&self, x: &FeatureMatrix) -> Vec<f64>;

    /// Hard labels using a 0.5 threshold on the match probability.
    fn predict(&self, x: &FeatureMatrix) -> Vec<Label> {
        self.predict_proba(x).into_iter().map(Label::from_score).collect()
    }

    /// Per-row confidence of the *predicted* class: `max(p, 1 − p)`.
    /// This is the pseudo-label confidence score `Z^P` of Algorithm 1.
    fn predict_confidence(&self, x: &FeatureMatrix) -> Vec<(Label, f64)> {
        self.predict_proba(x).into_iter().map(|p| (Label::from_score(p), p.max(1.0 - p))).collect()
    }
}

/// Factory enum for the paper's classifier set; Table 2 averages results
/// over all four.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassifierKind {
    /// Linear SVM with Platt scaling.
    Svm,
    /// Random forest.
    RandomForest,
    /// Logistic regression.
    LogisticRegression,
    /// CART decision tree.
    DecisionTree,
    /// Small multi-layer perceptron (not part of the paper's averaged set;
    /// used by the deep baselines).
    Mlp,
}

impl ClassifierKind {
    /// The four traditional classifiers the paper averages over.
    pub const PAPER_SET: [ClassifierKind; 4] = [
        ClassifierKind::Svm,
        ClassifierKind::RandomForest,
        ClassifierKind::LogisticRegression,
        ClassifierKind::DecisionTree,
    ];

    /// Instantiate a fresh, unfitted classifier. `seed` drives any
    /// stochastic component (bagging, SGD shuffling) so runs reproduce.
    pub fn build(self, seed: u64) -> Box<dyn Classifier> {
        self.build_with_engine(seed, TreeEngine::from_env())
    }

    /// Like [`ClassifierKind::build`] but with an explicit tree training
    /// engine for the tree-based kinds (forest, decision tree); the other
    /// kinds ignore it. Engines are bit-identical, so this only affects
    /// training wall time — it exists so benchmarks and equivalence tests
    /// can pin an engine without touching the process environment.
    pub fn build_with_engine(self, seed: u64, engine: TreeEngine) -> Box<dyn Classifier> {
        match self {
            ClassifierKind::Svm => Box::new(LinearSvm::with_seed(seed)),
            ClassifierKind::RandomForest => {
                Box::new(RandomForest::with_seed(seed).with_engine(engine))
            }
            ClassifierKind::LogisticRegression => Box::new(LogisticRegression::default()),
            ClassifierKind::DecisionTree => Box::new(DecisionTree::default().with_engine(engine)),
            ClassifierKind::Mlp => Box::new(Mlp::with_seed(seed)),
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            ClassifierKind::Svm => "svm",
            ClassifierKind::RandomForest => "rf",
            ClassifierKind::LogisticRegression => "logreg",
            ClassifierKind::DecisionTree => "dtree",
            ClassifierKind::Mlp => "mlp",
        }
    }
}

/// Validate a training set shape shared by all classifiers.
pub(crate) fn check_training_input(
    x: &FeatureMatrix,
    y: &[Label],
    weights: Option<&[f64]>,
) -> Result<()> {
    use transer_common::Error;
    if x.rows() == 0 {
        return Err(Error::EmptyInput("training rows"));
    }
    if x.cols() == 0 {
        return Err(Error::EmptyInput("training features"));
    }
    if x.rows() != y.len() {
        return Err(Error::DimensionMismatch {
            what: "rows vs labels",
            left: x.rows(),
            right: y.len(),
        });
    }
    if let Some(w) = weights {
        if w.len() != y.len() {
            return Err(Error::DimensionMismatch {
                what: "weights vs labels",
                left: w.len(),
                right: y.len(),
            });
        }
        if w.iter().any(|&v| !v.is_finite() || v < 0.0) {
            return Err(Error::InvalidParameter {
                name: "weights",
                message: "weights must be finite and non-negative".into(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_names() {
        for kind in ClassifierKind::PAPER_SET {
            let c = kind.build(1);
            assert_eq!(c.name(), kind.name());
        }
        assert_eq!(ClassifierKind::Mlp.build(1).name(), "mlp");
    }

    #[test]
    fn input_validation() {
        let x = FeatureMatrix::from_vecs(&[vec![0.1, 0.2]]).unwrap();
        assert!(check_training_input(&x, &[Label::Match], None).is_ok());
        assert!(check_training_input(&FeatureMatrix::empty(2), &[], None).is_err());
        assert!(check_training_input(&x, &[], None).is_err());
        assert!(check_training_input(&x, &[Label::Match], Some(&[1.0, 2.0])).is_err());
        assert!(check_training_input(&x, &[Label::Match], Some(&[-1.0])).is_err());
        assert!(check_training_input(&x, &[Label::Match], Some(&[f64::NAN])).is_err());
        assert!(check_training_input(&x, &[Label::Match], Some(&[2.0])).is_ok());
    }
}

//! Property tests on the classifier implementations: probability bounds,
//! determinism, label/probability consistency and sampling invariants.

use proptest::prelude::*;
use transer_common::{FeatureMatrix, Label};
use transer_ml::{stratified_fraction, undersample_to_ratio, ClassifierKind};

/// Random two-cluster training data with jitter; always contains both
/// classes.
fn training_data() -> impl Strategy<Value = (FeatureMatrix, Vec<Label>)> {
    (10usize..40, 2usize..5, 0u64..1_000).prop_map(|(per_class, m, seed)| {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..per_class {
            rows.push((0..m).map(|_| 0.75 + 0.2 * next()).collect::<Vec<_>>());
            labels.push(Label::Match);
            rows.push((0..m).map(|_| 0.05 + 0.2 * next()).collect::<Vec<_>>());
            labels.push(Label::NonMatch);
        }
        (FeatureMatrix::from_vecs(&rows).unwrap(), labels)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn probabilities_bounded_for_all_classifiers((x, y) in training_data()) {
        for kind in ClassifierKind::PAPER_SET {
            let mut clf = kind.build(3);
            clf.fit(&x, &y).unwrap();
            for p in clf.predict_proba(&x) {
                prop_assert!((0.0..=1.0).contains(&p), "{}: {p}", kind.name());
                prop_assert!(p.is_finite());
            }
        }
    }

    #[test]
    fn predict_agrees_with_proba_threshold((x, y) in training_data()) {
        for kind in ClassifierKind::PAPER_SET {
            let mut clf = kind.build(9);
            clf.fit(&x, &y).unwrap();
            let probs = clf.predict_proba(&x);
            let labels = clf.predict(&x);
            for (p, l) in probs.iter().zip(&labels) {
                prop_assert_eq!(*l, Label::from_score(*p), "{}", kind.name());
            }
        }
    }

    #[test]
    fn confidence_is_max_of_proba((x, y) in training_data()) {
        let mut clf = ClassifierKind::LogisticRegression.build(1);
        clf.fit(&x, &y).unwrap();
        for (label, conf) in clf.predict_confidence(&x) {
            prop_assert!((0.5..=1.0).contains(&conf));
            let _ = label;
        }
    }

    #[test]
    fn fitting_is_deterministic((x, y) in training_data()) {
        for kind in ClassifierKind::PAPER_SET {
            let run = || {
                let mut clf = kind.build(7);
                clf.fit(&x, &y).unwrap();
                clf.predict_proba(&x)
            };
            prop_assert_eq!(run(), run(), "{}", kind.name());
        }
    }

    #[test]
    fn separable_clusters_are_learned((x, y) in training_data()) {
        for kind in ClassifierKind::PAPER_SET {
            let mut clf = kind.build(5);
            clf.fit(&x, &y).unwrap();
            let correct = clf.predict(&x).iter().zip(&y).filter(|(a, b)| a == b).count();
            let acc = correct as f64 / y.len() as f64;
            prop_assert!(acc > 0.9, "{}: accuracy {acc}", kind.name());
        }
    }

    #[test]
    fn undersampling_respects_ratio_and_keeps_matches(
        matches in 1usize..40,
        non_matches in 0usize..300,
        ratio in 0.5..8.0f64,
        seed in 0u64..100,
    ) {
        let mut y = vec![Label::Match; matches];
        y.extend(vec![Label::NonMatch; non_matches]);
        let kept = undersample_to_ratio(&y, ratio, seed);
        let kept_m = kept.iter().filter(|&&i| y[i].is_match()).count();
        let kept_n = kept.len() - kept_m;
        prop_assert_eq!(kept_m, matches, "all matches kept");
        let cap = ((matches as f64 * ratio).round() as usize).min(non_matches);
        prop_assert_eq!(kept_n, cap);
        // Sorted unique indices.
        prop_assert!(kept.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn stratified_fraction_is_proportional(
        matches in 2usize..50,
        non_matches in 2usize..200,
        fraction in 0.1..1.0f64,
        seed in 0u64..100,
    ) {
        let mut y = vec![Label::Match; matches];
        y.extend(vec![Label::NonMatch; non_matches]);
        let kept = stratified_fraction(&y, fraction, seed);
        let kept_m = kept.iter().filter(|&&i| y[i].is_match()).count() as f64;
        let expected = (matches as f64 * fraction).round().max(1.0);
        prop_assert!((kept_m - expected).abs() < 1.5, "{kept_m} vs {expected}");
    }
}

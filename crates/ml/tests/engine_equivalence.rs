//! The bit-identity contract between the two tree training engines: for
//! any training set — heavy ties, zero/extreme weights, NaN features —
//! the presorted engine must produce exactly the tree the per-node-sort
//! reference produces, at every worker count.

use proptest::prelude::*;
use transer_common::{FeatureMatrix, Label};
use transer_ml::{Classifier, DecisionTree, RandomForest, RandomForestConfig, TreeEngine};

/// Deterministic xorshift in `[0, 1)` (proptest drives only the seed).
fn xorshift(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[derive(Debug, Clone, Copy)]
enum WeightKind {
    None,
    Uniform,
    /// Roughly a third of the rows weighted zero.
    SomeZero,
    /// Mixed `1e12` / `1e-12` weights.
    Extreme,
}

#[derive(Debug, Clone)]
struct Case {
    x: FeatureMatrix,
    y: Vec<Label>,
    w: Option<Vec<f64>>,
    probes: FeatureMatrix,
}

fn build_case(n: usize, m: usize, seed: u64, tied: bool, weights: WeightKind) -> Case {
    let mut next = xorshift(seed);
    let mut value = |k: usize| {
        if tied {
            // A 4-level grid: most neighbours tie, so the sorted order —
            // and the stability of the partition — actually matters.
            (next() * 4.0).floor() / 3.0
        } else if k == 0 && next() < 0.05 {
            // The occasional NaN feature exercises the NaN tail handling.
            f64::NAN
        } else {
            next()
        }
    };
    let rows: Vec<Vec<f64>> = (0..n).map(|_| (0..m).map(&mut value).collect()).collect();
    let probes: Vec<Vec<f64>> = (0..24).map(|_| (0..m).map(&mut value).collect()).collect();
    let _ = value;
    let y: Vec<Label> =
        (0..n).map(|_| if next() < 0.5 { Label::Match } else { Label::NonMatch }).collect();
    let w = match weights {
        WeightKind::None => None,
        WeightKind::Uniform => Some(vec![1.0; n]),
        WeightKind::SomeZero => {
            Some((0..n).map(|_| if next() < 0.33 { 0.0 } else { 1.0 }).collect())
        }
        WeightKind::Extreme => {
            Some((0..n).map(|_| if next() < 0.5 { 1e12 } else { 1e-12 }).collect())
        }
    };
    Case {
        x: FeatureMatrix::from_vecs(&rows).unwrap(),
        y,
        w,
        probes: FeatureMatrix::from_vecs(&probes).unwrap(),
    }
}

fn assert_bitwise_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: row {i}: {x} vs {y}");
    }
}

fn check_tree_case(case: &Case) {
    let fit = |engine: TreeEngine, workers: usize| {
        let mut tree = DecisionTree::default().with_engine(engine).with_threads(workers);
        tree.fit_weighted(&case.x, &case.y, case.w.as_deref()).unwrap();
        (tree.predict_proba(&case.x), tree.predict_proba(&case.probes))
    };
    let (ref_train, ref_probe) = fit(TreeEngine::Reference, 1);
    for workers in [1, 4] {
        let (train, probe) = fit(TreeEngine::Presorted, workers);
        assert_bitwise_eq(&ref_train, &train, &format!("train probs, workers={workers}"));
        assert_bitwise_eq(&ref_probe, &probe, &format!("probe probs, workers={workers}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn presorted_tree_is_bitwise_equal_to_reference(
        n in 6usize..60,
        m in 1usize..5,
        seed in 0u64..10_000,
        tied in any::<bool>(),
        weight_kind in 0usize..4,
    ) {
        let weights = [
            WeightKind::None,
            WeightKind::Uniform,
            WeightKind::SomeZero,
            WeightKind::Extreme,
        ][weight_kind];
        check_tree_case(&build_case(n, m, seed, tied, weights));
    }

    #[test]
    fn presorted_forest_is_bitwise_equal_to_reference(
        seed in 0u64..10_000,
        tied in any::<bool>(),
    ) {
        let case = build_case(48, 4, seed, tied, WeightKind::None);
        let config = RandomForestConfig { n_trees: 6, ..Default::default() };
        let fit = |engine: TreeEngine, workers: usize| {
            let mut rf = RandomForest::new(config, seed)
                .with_engine(engine)
                .with_threads(workers);
            rf.fit_weighted(&case.x, &case.y, case.w.as_deref()).unwrap();
            rf.predict_proba(&case.probes)
        };
        let reference = fit(TreeEngine::Reference, 1);
        for workers in [1, 4] {
            let probs = fit(TreeEngine::Presorted, workers);
            assert_bitwise_eq(&reference, &probs, &format!("forest probs, workers={workers}"));
        }
    }
}

/// Large enough that the presorted engine's parallel split search engages
/// (`node_rows × candidates` past its work threshold at the root): the
/// fixed panel size must keep any worker count bitwise equal to one.
#[test]
fn parallel_split_search_is_bitwise_equal() {
    let case = build_case(3000, 4, 99, false, WeightKind::Uniform);
    let fit = |engine: TreeEngine, workers: usize| {
        let mut tree = DecisionTree::default().with_engine(engine).with_threads(workers);
        tree.fit_weighted(&case.x, &case.y, case.w.as_deref()).unwrap();
        tree.predict_proba(&case.probes)
    };
    let reference = fit(TreeEngine::Reference, 1);
    for workers in [1, 2, 4, 16] {
        let probs = fit(TreeEngine::Presorted, workers);
        assert_bitwise_eq(&reference, &probs, &format!("workers={workers}"));
    }
}

/// All-tied columns plus a NaN column: no split exists, both engines must
/// agree on the single-leaf fallback.
#[test]
fn degenerate_columns_are_bitwise_equal() {
    let rows: Vec<Vec<f64>> = (0..12).map(|_| vec![0.5, f64::NAN, 1.0]).collect();
    let y: Vec<Label> =
        (0..12).map(|i| if i % 3 == 0 { Label::Match } else { Label::NonMatch }).collect();
    let x = FeatureMatrix::from_vecs(&rows).unwrap();
    let mut reference = DecisionTree::default().with_engine(TreeEngine::Reference);
    reference.fit(&x, &y).unwrap();
    let mut presorted = DecisionTree::default().with_engine(TreeEngine::Presorted);
    presorted.fit(&x, &y).unwrap();
    assert_bitwise_eq(&reference.predict_proba(&x), &presorted.predict_proba(&x), "degenerate");
}

//! Property tests on model persistence: save → load → predict must be
//! bit-identical to the in-memory classifier for every persistable kind,
//! through both the JSON value round trip and the on-disk file format.

// Registers the counting global allocator so the suite runs under
// `TRANSER_ALLOC_TRACE=1` (the tier-1 hook).
use transer_common as _;

use proptest::prelude::*;
use transer_common::{FeatureMatrix, Label};
use transer_ml::{ClassifierKind, PersistedModel};

/// Rows in `[0, 1]^3`; the label is a threshold on the first feature so
/// every kind has something learnable, with the first two rows pinned to
/// one label per class (degenerate single-class draws teach nothing
/// about persistence).
fn task(rows: usize) -> impl Strategy<Value = (FeatureMatrix, Vec<Label>)> {
    prop::collection::vec((0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0), 8..rows).prop_map(|rows| {
        let mut labels: Vec<Label> = rows.iter().map(|&(a, _, _)| Label::from_score(a)).collect();
        labels[0] = Label::Match;
        labels[1] = Label::NonMatch;
        let vecs: Vec<Vec<f64>> = rows.into_iter().map(|(a, b, c)| vec![a, b, c]).collect();
        (FeatureMatrix::from_vecs(&vecs).expect("rectangular"), labels)
    })
}

/// Fit `kind`, round-trip it through JSON and through a file, and demand
/// bit-identical probabilities from all three models.
fn assert_round_trip(kind: ClassifierKind, x: &FeatureMatrix, y: &[Label]) {
    let mut clf = kind.build(7);
    clf.fit(x, y).expect("fit");
    let persisted = PersistedModel::from_classifier(clf.as_ref()).expect("persistable kind");

    let via_json = PersistedModel::from_json(&persisted.to_json()).expect("value round trip");

    let path = std::env::temp_dir().join(format!(
        "transer_persist_{}_{}_{}.json",
        kind.name(),
        std::process::id(),
        x.rows(),
    ));
    let path_str = path.to_str().expect("utf-8 temp path");
    persisted.save(path_str).expect("save");
    let via_file = PersistedModel::load(path_str).expect("load");
    let _ = std::fs::remove_file(&path);

    let expect: Vec<u64> = clf.predict_proba(x).iter().map(|p| p.to_bits()).collect();
    for (label, model) in [("json", &via_json), ("file", &via_file)] {
        let got: Vec<u64> =
            model.classifier().predict_proba(x).iter().map(|p| p.to_bits()).collect();
        assert_eq!(
            got,
            expect,
            "{} probabilities drift through the {label} round trip",
            kind.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn forest_round_trip_is_bit_identical((x, y) in task(40)) {
        assert_round_trip(ClassifierKind::RandomForest, &x, &y);
    }

    #[test]
    fn logistic_round_trip_is_bit_identical((x, y) in task(40)) {
        assert_round_trip(ClassifierKind::LogisticRegression, &x, &y);
    }

    #[test]
    fn tree_round_trip_is_bit_identical((x, y) in task(40)) {
        assert_round_trip(ClassifierKind::DecisionTree, &x, &y);
    }
}

#[test]
fn unfitted_models_round_trip_too() {
    let kinds = [
        ClassifierKind::RandomForest,
        ClassifierKind::LogisticRegression,
        ClassifierKind::DecisionTree,
    ];
    let x = FeatureMatrix::from_vecs(&[vec![0.3, 0.7], vec![0.9, 0.1]]).expect("rectangular");
    for kind in kinds {
        let clf = kind.build(0);
        let persisted = PersistedModel::from_classifier(clf.as_ref()).expect("persistable kind");
        let reloaded = PersistedModel::from_json(&persisted.to_json()).expect("round trip");
        assert_eq!(
            reloaded.classifier().predict_proba(&x),
            clf.predict_proba(&x),
            "{} unfitted fallback drifts",
            kind.name()
        );
    }
}

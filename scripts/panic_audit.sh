#!/usr/bin/env bash
# Panic audit: enforce the panic-free guarantee for the library crates on
# the pipeline's hot path. Non-test code in these crates must not contain
# unwrap/expect or the panicking macros — every failure has to surface as
# a typed `transer_common::Error` so the degradation ladder (DESIGN.md)
# can observe it.
#
# Documented-precondition asserts (`assert!`/`assert_eq!`/`debug_assert!`)
# are deliberately NOT denied: they guard internal invariants with a
# `# Panics` section in the doc, which is a different contract from an
# error path swallowed by `unwrap`.
#
# A line may be exempted by listing `path:line-text-fragment` in
# scripts/panic_allowlist.txt (currently empty: the sweep removed every
# occurrence).
set -euo pipefail
cd "$(dirname "$0")/.."

CRATES=(common similarity blocking knn ml linalg core trace serve)
ALLOWLIST=scripts/panic_allowlist.txt
DENY='\.unwrap\(\)|\.expect\(|panic!\(|unreachable!\(|todo!\(|unimplemented!\('

violations=0
for crate in "${CRATES[@]}"; do
    while IFS= read -r file; do
        # Strip everything from the first `#[cfg(test)]` down: test modules
        # sit at the bottom of each file in this codebase, and test code is
        # allowed to unwrap.
        hits=$(awk '/#\[cfg\(test\)\]/{exit} {print FILENAME":"FNR":"$0}' "$file" \
            | grep -vE '^[^:]*:[0-9]+:[[:space:]]*//' \
            | grep -E "$DENY" || true)
        [ -z "$hits" ] && continue
        while IFS= read -r hit; do
            if [ -s "$ALLOWLIST" ]; then
                path=${hit%%:*}
                if grep -qF -- "$path" "$ALLOWLIST" \
                    && grep -qF -- "$(echo "${hit#*:*:}" | tr -s '[:space:]' ' ')" "$ALLOWLIST"; then
                    continue
                fi
            fi
            echo "panic_audit: $hit"
            violations=$((violations + 1))
        done <<< "$hits"
    done < <(find "crates/$crate/src" -name '*.rs')
done

if [ "$violations" -gt 0 ]; then
    echo "panic_audit: $violations panicking construct(s) in library code" >&2
    echo "panic_audit: convert to typed errors or add to $ALLOWLIST" >&2
    exit 1
fi
echo "panic_audit: clean (${CRATES[*]})"

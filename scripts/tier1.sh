#!/usr/bin/env bash
# Tier-1 gate: release build + full test suite, then clippy with warnings
# denied and formatting checked. Run from anywhere; operates on the repo
# root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo bench --no-run
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check

# Traced smoke: a tiny controlled run with TRANSER_TRACE=1 must emit a
# schema-valid trace report covering every instrumented layer.
TRANSER_TRACE=1 ./target/release/ablation_controlled --quick --scale 0.05 > /dev/null
./target/release/trace_report --check results/TRACE_controlled.json

#!/usr/bin/env bash
# Tier-1 gate: release build + full test suite, then clippy with warnings
# denied and formatting checked. Run from anywhere; operates on the repo
# root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo bench --no-run
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
bash scripts/panic_audit.sh

# Fault-injected smoke: with GEN training poisoned by NaNs on every
# invocation, the degradation ladder must still carry a full controlled
# run to a clean exit (typed fallbacks, no panic).
TRANSER_FAULT=gen.fit:nan ./target/release/ablation_controlled --quick --scale 0.05 > /dev/null

# Traced smoke: a tiny controlled run with TRANSER_TRACE=1 must emit a
# schema-valid trace report covering every instrumented layer (including
# the grain-dispatch counters and chunk-size histogram).
TRANSER_TRACE=1 ./target/release/ablation_controlled --quick --scale 0.05 > /dev/null
./target/release/trace_report --check results/TRACE_controlled.json

# Scale-ladder smoke: the end-to-end bench at its smallest rung (10^4
# rows per domain) must report finite records/sec, bit-identical labels
# across worker counts (and matching the committed BENCH_scale.json
# baseline hash), and write a parseable JSON artefact. Written to
# target/ so the committed full-grid BENCH_scale.json is not clobbered.
./target/release/bench_scale --smoke --out target/BENCH_scale_smoke.json > /dev/null

# Similarity-kernel smoke: every measure verified bitwise-equal between
# the reference and fast engines on the bench corpus, the trace-counter
# partition invariant asserted on live counts, and the JSON artefact
# round-tripped through the parser.
./target/release/bench_similarity --smoke --out target/BENCH_similarity_smoke.json > /dev/null

# k-NN index smoke: on one small deterministic dataset the KD-tree, ball
# tree and blocked backends must agree bitwise with the brute-force
# reference (neighbours, squared-distance bits, tie-break order) at
# several k; panics non-zero on the first disagreement.
./target/release/bench_sel --smoke --json target/BENCH_sel_smoke.json > /dev/null

#!/usr/bin/env bash
# Tier-1 gate: release build + full test suite, then clippy with warnings
# denied and formatting checked. Run from anywhere; operates on the repo
# root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo bench --no-run
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check

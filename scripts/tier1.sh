#!/usr/bin/env bash
# Tier-1 gate: release build + full test suite, then clippy with warnings
# denied and formatting checked. Run from anywhere; operates on the repo
# root. `--rebaseline` refreshes the blessed trace baseline in
# results/baselines/ from this run instead of gating against it (use when
# a counter, span or allocation-profile change is intentional).
set -euo pipefail
cd "$(dirname "$0")/.."

REBASELINE=0
[ "${1:-}" = "--rebaseline" ] && REBASELINE=1

cargo build --release
cargo test -q
cargo bench --no-run
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
bash scripts/panic_audit.sh

# Fault-injected smoke: with GEN training poisoned by NaNs on every
# invocation, the degradation ladder must still carry a full controlled
# run to a clean exit (typed fallbacks, no panic).
TRANSER_FAULT=gen.fit:nan ./target/release/ablation_controlled --quick --scale 0.05 > /dev/null

# Traced smoke: a tiny controlled run with TRANSER_TRACE=1 must emit a
# schema-valid (v2) trace report covering every instrumented layer,
# including per-span allocation profiles from the counting allocator
# (TRANSER_ALLOC_TRACE=1). The worker count is pinned so the
# deterministic counters and allocation profile are comparable run to
# run and against the committed baseline.
TRACED_ENV="TRANSER_TRACE=1 TRANSER_ALLOC_TRACE=1 TRANSER_THREADS=2"
env $TRACED_ENV ./target/release/ablation_controlled --quick --scale 0.05 > /dev/null
./target/release/trace_report --check results/TRACE_controlled.json

# Trace regression gate: the traced smoke run must match the blessed
# baseline — deterministic counters, histogram structure, span-tree
# shape and allocation profile exactly; timings within the band. An
# intentional change reruns with `tier1.sh --rebaseline` and commits the
# refreshed baseline.
BASELINE=results/baselines/TRACE_controlled.json
if [ "$REBASELINE" = 1 ] || [ ! -f "$BASELINE" ]; then
    mkdir -p results/baselines
    cp results/TRACE_controlled.json "$BASELINE"
    echo "tier1: rebaselined $BASELINE"
else
    ./target/release/trace_diff --gate "$BASELINE" results/TRACE_controlled.json
fi

# Negative control for the gate: a fault-perturbed traced run must FAIL
# the diff (the degradation ladder changes the counter stream), otherwise
# the gate is vacuous. The perturbed artefact is kept out of results/.
env $TRACED_ENV TRANSER_FAULT=gen.fit:nan \
    ./target/release/ablation_controlled --quick --scale 0.05 > /dev/null
mv results/TRACE_controlled.json target/TRACE_perturbed.json
if ./target/release/trace_diff --gate "$BASELINE" target/TRACE_perturbed.json > /dev/null; then
    echo "tier1: trace_diff gate FAILED to flag a fault-perturbed run" >&2
    exit 1
fi
echo "tier1: trace_diff gate flags the fault-perturbed control run (expected)"
# Restore the clean committed-state artefact clobbered by the control.
env $TRACED_ENV ./target/release/ablation_controlled --quick --scale 0.05 > /dev/null

# Scale-ladder smoke: the end-to-end bench at its smallest rung (10^4
# rows per domain) must report finite records/sec, bit-identical labels
# across worker counts (and matching the committed BENCH_scale.json
# baseline hash), and write a parseable JSON artefact. Written to
# target/ so the committed full-grid BENCH_scale.json is not clobbered.
./target/release/bench_scale --smoke --out target/BENCH_scale_smoke.json > /dev/null

# Similarity-kernel smoke: every measure verified bitwise-equal between
# the reference and fast engines on the bench corpus, the trace-counter
# partition invariant asserted on live counts, the steady-state scoring
# pass asserted allocation-free under the counting allocator
# (TRANSER_ALLOC_TRACE=1), and the JSON artefact round-tripped through
# the parser.
TRANSER_ALLOC_TRACE=1 \
    ./target/release/bench_similarity --smoke --out target/BENCH_similarity_smoke.json > /dev/null

# k-NN index smoke: on one small deterministic dataset the KD-tree, ball
# tree and blocked backends must agree bitwise with the brute-force
# reference (neighbours, squared-distance bits, tie-break order) at
# several k; panics non-zero on the first disagreement.
./target/release/bench_sel --smoke --out target/BENCH_sel_smoke.json > /dev/null

# Serving smoke: train at the smallest rung, round-trip the model and LSH
# index through their on-disk JSON artefacts, then serve the query domain
# through the warm MatchService. The decision hash must be bit-identical
# across worker counts AND match the committed BENCH_serve.json baseline
# (a behaviour change reruns bench_serve --rebaseline and commits the
# refreshed artefact).
./target/release/bench_serve --smoke --out target/BENCH_serve_smoke.json > /dev/null

# Model-persistence round trip under the counting allocator: save → load
# → predict must be bit-identical for every persistable classifier kind.
TRANSER_ALLOC_TRACE=1 cargo test -q -p transer-ml --test persist_roundtrip

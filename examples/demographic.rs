//! Historical civil-register linkage: transfer from the Kilmarnock town
//! registers to the Isle of Skye registers, with a look inside the SEL
//! phase's per-instance similarity scores.
//!
//! ```text
//! cargo run --release --example demographic
//! ```

use transer::core::select_instances;
use transer::prelude::*;

fn main() {
    // KIL Bp-Dp -> IOS Bp-Dp: birth parents linked to death parents, the
    // pair where the paper reports its largest precision gain.
    let pair = ScenarioPair::BpDp.domain_pair(0.1, 42).expect("workload generation").reversed(); // KIL as source
    println!(
        "task: {}  (source {} pairs / {:.1}% M, target {} pairs / {:.1}% M)",
        pair.label(),
        pair.source.len(),
        pair.source.match_rate() * 100.0,
        pair.target.len(),
        pair.target.match_rate() * 100.0
    );

    // Inspect the instance selector: which source instances are
    // transferable, and what their sim_c / sim_l scores look like.
    let config = TransErConfig::default();
    let selection = select_instances(&pair.source.x, &pair.source.y, &pair.target.x, &config)
        .expect("selection");
    let kept_matches = selection.indices.iter().filter(|&&i| pair.source.y[i].is_match()).count();
    println!(
        "SEL: {} of {} instances transferable ({} matches); thresholds t_c={} t_l={}",
        selection.indices.len(),
        pair.source.len(),
        kept_matches,
        config.t_c,
        config.t_l
    );
    let mean = |f: &dyn Fn(usize) -> f64| -> f64 {
        (0..pair.source.len()).map(f).sum::<f64>() / pair.source.len() as f64
    };
    println!(
        "     mean sim_c = {:.3}, mean sim_l = {:.3}",
        mean(&|i| selection.scores[i].sim_c),
        mean(&|i| selection.scores[i].sim_l)
    );

    // Full pipeline vs the no-transfer baseline, averaged over the paper's
    // four classifiers.
    let mut transer_f = MeanStd::new();
    let mut naive_f = MeanStd::new();
    for kind in ClassifierKind::PAPER_SET {
        let transer = TransEr::new(config, kind, 5).expect("valid configuration");
        let out =
            transer.fit_predict(&pair.source.x, &pair.source.y, &pair.target.x).expect("pipeline");
        transer_f.push(evaluate(&out.labels, &pair.target.y).f_star());

        let mut naive = kind.build(5);
        naive.fit(&pair.source.x, &pair.source.y).expect("fit");
        naive_f.push(evaluate(&naive.predict(&pair.target.x), &pair.target.y).f_star());
    }
    println!("TransER F* = {} (mean ± std over 4 classifiers)", transer_f.cell_pct());
    println!("Naive   F* = {}", naive_f.cell_pct());
}

//! Bring your own data: build records by hand, declare a feature space,
//! and run the full block → compare → transfer pipeline on it.
//!
//! This is the template to follow when plugging real databases into the
//! library: only the record-loading part changes.
//!
//! ```text
//! cargo run --release --example custom_pipeline
//! ```

use transer::prelude::*;

/// A tiny product-catalogue record: [name, brand, price].
fn product(id: u64, entity: u64, name: &str, brand: &str, price: f64) -> Record {
    Record::new(
        id,
        entity,
        vec![AttrValue::Text(name.into()), AttrValue::Text(brand.into()), AttrValue::Number(price)],
    )
}

fn catalogue_a() -> Vec<Record> {
    vec![
        product(0, 1, "wireless optical mouse m185", "logitech", 14.99),
        product(1, 2, "mechanical keyboard mx brown", "cherry", 89.0),
        product(2, 3, "usb c charging cable 2m", "anker", 9.5),
        product(3, 4, "noise cancelling headphones wh1000", "sony", 279.0),
        product(4, 5, "portable ssd 1tb t7", "samsung", 99.0),
    ]
}

fn catalogue_b() -> Vec<Record> {
    vec![
        product(0, 1, "optical wireless mouse m-185", "logitech", 13.49),
        product(1, 2, "cherry mx brown mech keyboard", "cherry gmbh", 92.0),
        product(2, 6, "usb c cable braided 1m", "anker", 7.99),
        product(3, 4, "wh-1000 noise canceling headphones", "sony", 265.0),
        product(4, 7, "portable hdd 2tb expansion", "seagate", 64.0),
    ]
}

fn main() {
    let left = catalogue_a();
    let right = catalogue_b();

    // Feature space: token Jaccard on the name, Jaro-Winkler on the brand,
    // bounded numeric similarity on the price. Declaring this once and
    // using it for BOTH domains is the paper's homogeneous-TL assumption.
    let comparison = Comparison::new(vec![
        (0, Measure::TokenJaccard),
        (1, Measure::JaroWinkler),
        (2, Measure::Numeric(50.0)),
    ])
    .expect("non-empty feature space");

    // Block (the catalogues are tiny, so a permissive LSH is fine).
    let blocker =
        MinHashLsh::new(MinHashLshConfig { num_hashes: 16, bands: 8, ..Default::default() })
            .expect("valid LSH config");
    let pairs = blocker.candidate_pairs(&left, &right);
    println!("blocking produced {} candidate pairs", pairs.len());

    // Compare into a labelled dataset (labels come from the entity ids —
    // with real data, this is where your curated training labels go).
    let dataset =
        comparison.compare_to_dataset("products", &left, &right, &pairs).expect("aligned output");
    for (i, row) in dataset.x.iter_rows().enumerate() {
        println!("  pair {i}: features {row:?} -> {}", dataset.y[i]);
    }

    // With a labelled source catalogue of the same shape, this dataset
    // could now be the target of TransEr::fit_predict. Here we simply show
    // the instance selector scoring it against itself.
    // With only five instances the neighbourhoods are noisy, so relax the
    // confidence threshold for this demonstration.
    let sel = select_instances(
        &dataset.x,
        &dataset.y,
        &dataset.x,
        &TransErConfig { k: 2, t_c: 0.5, t_l: 0.5, ..Default::default() },
    )
    .expect("selection");
    println!(
        "self-selection keeps {}/{} instances and scores each (sim_c, sim_l):",
        sel.indices.len(),
        dataset.len()
    );
    for (i, s) in sel.scores.iter().enumerate() {
        println!("  pair {i}: sim_c={:.2} sim_l={:.2}", s.sim_c, s.sim_l);
    }
}

//! The full ER pipeline on bibliographic records, end to end: generate raw
//! publication databases, block with MinHash LSH, compare attributes into
//! feature matrices, then transfer labels from the curated DBLP-ACM task to
//! the noisy DBLP-Scholar task.
//!
//! ```text
//! cargo run --release --example bibliographic
//! ```

use transer::datagen::biblio::{self, BiblioConfig};
use transer::prelude::*;

/// Block + compare one linkage task, returning its labelled feature data.
fn build_task(name: &str, config: &BiblioConfig) -> LabeledDataset {
    let (left, right) = biblio::generate(config);
    println!("{name}: {} + {} records", left.len(), right.len());

    // Blocking: MinHash LSH over title + author tokens (attributes 0, 1).
    let blocker = MinHashLsh::new(MinHashLshConfig {
        num_hashes: 24,
        bands: 8,
        max_bucket: 60,
        ..Default::default()
    })
    .expect("valid LSH config");
    let pairs = blocker.candidate_pairs_masked(&left, &right, Some(&[0, 1]));
    println!("  blocking: {} candidate pairs", pairs.len());

    // Comparison: the shared 4-feature space (title, authors, venue, year).
    let dataset = biblio::comparison()
        .compare_to_dataset(name, &left, &right, &pairs)
        .expect("aligned comparison output");
    println!(
        "  comparison: {} feature vectors, {:.1}% matches",
        dataset.len(),
        dataset.match_rate() * 100.0
    );
    dataset
}

fn main() {
    // Source domain: linking DBLP to ACM (both curated).
    let source = build_task("DBLP-ACM", &BiblioConfig::dblp_acm(1200, 7));
    // Target domain: linking DBLP to Google Scholar (scraped, messy).
    let target = build_task("DBLP-Scholar", &BiblioConfig::dblp_scholar(2000, 13));
    let pair = DomainPair::new(source, target).expect("same feature space");

    println!("\ntransferring {} ...", pair.label());
    for kind in [ClassifierKind::LogisticRegression, ClassifierKind::RandomForest] {
        let transer = TransEr::new(TransErConfig::default(), kind, 3).expect("valid configuration");
        let out =
            transer.fit_predict(&pair.source.x, &pair.source.y, &pair.target.x).expect("pipeline");
        let cm = evaluate(&out.labels, &pair.target.y);

        let mut naive = kind.build(3);
        naive.fit(&pair.source.x, &pair.source.y).expect("fit");
        let nm = evaluate(&naive.predict(&pair.target.x), &pair.target.y);

        println!(
            "  [{}] TransER F*={:.3} (P={:.2} R={:.2})  vs  Naive F*={:.3} (P={:.2} R={:.2})",
            kind.name(),
            cm.f_star(),
            cm.precision(),
            cm.recall(),
            nm.f_star(),
            nm.precision(),
            nm.recall()
        );
    }
}

//! The paper's future-work directions, implemented: pick the best of
//! several candidate source domains, then close the remaining quality gap
//! with a few rounds of uncertainty-sampled oracle queries
//! (active learning on top of the semi-supervised pipeline).
//!
//! ```text
//! cargo run --release --example active_learning
//! ```

use transer::prelude::*;

fn main() {
    // Target: the noisy Musicbrainz linkage task.
    let music = ScenarioPair::Music.domain_pair(0.08, 42).expect("generation");
    let target = &music.target;

    // Candidate sources: the aligned MSD task and a mismatched
    // bibliographic task is impossible (different feature space), so we
    // offer MSD plus a weaker, sub-sampled version of itself.
    let strong = &music.source;
    let weak = strong.select(&(0..strong.len() / 8).collect::<Vec<_>>());
    let config = TransErConfig::default();
    let candidates: Vec<(&FeatureMatrix, &[Label])> =
        vec![(&weak.x, &weak.y), (&strong.x, &strong.y)];
    let ranked = rank_sources(&candidates, &target.x, &config).expect("ranking");
    println!("source ranking (best first):");
    for s in &ranked {
        println!(
            "  candidate {}: yield {:.2}, mean sim_l {:.2}, score {:.3}",
            s.source_index, s.selection_yield, s.mean_structural_similarity, s.score
        );
    }
    let best = ranked[0].source_index;
    println!("picked candidate {best} (the full MSD source)\n");

    // Baseline transfer from the chosen source.
    let transer = TransEr::new(config, ClassifierKind::LogisticRegression, 7).expect("config");
    let base =
        transer.fit_predict(candidates[best].0, candidates[best].1, &target.x).expect("pipeline");
    let cm = evaluate(&base.labels, &target.y);
    println!(
        "transfer only:        F*={:.3} (P={:.2} R={:.2})",
        cm.f_star(),
        cm.precision(),
        cm.recall()
    );

    // Active learning: 4 rounds x 25 oracle labels, answered from the
    // held-out ground truth (a human in a real deployment).
    let history = active_transfer(
        config,
        ClassifierKind::LogisticRegression,
        7,
        candidates[best].0,
        candidates[best].1,
        &target.x,
        4,
        25,
        |i| target.y[i],
    )
    .expect("active loop");
    for (round, state) in history.iter().enumerate() {
        let cm = evaluate(&state.labels, &target.y);
        println!(
            "after round {} ({:>3} labels): F*={:.3} (P={:.2} R={:.2})",
            round + 1,
            state.labelled.len(),
            cm.f_star(),
            cm.precision(),
            cm.recall()
        );
    }
}

//! Run TransER against all six baselines of the paper on one transfer
//! task, under the same resource budget that produces the paper's ME/TE
//! outcomes.
//!
//! ```text
//! cargo run --release --example compare_baselines [scale]
//! ```

use transer::eval::{directed_tasks, run_baseline, run_transer, MethodOutcome};
use transer::prelude::*;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let classifiers = vec![ClassifierKind::LogisticRegression, ClassifierKind::RandomForest];
    let budget = ResourceBudget { max_memory_bytes: 512 << 20, max_secs: 300.0 };

    let tasks = directed_tasks(scale, 42).expect("workload generation");
    let task = tasks.into_iter().find(|t| t.name == "MSD -> MB").expect("the music task exists");
    println!(
        "task: {} ({} -> {} pairs), classifiers {:?}, budget {} MiB / {:.0}s\n",
        task.name,
        task.source.len(),
        task.target.len(),
        classifiers.iter().map(|c| c.name()).collect::<Vec<_>>(),
        budget.max_memory_bytes >> 20,
        budget.max_secs,
    );

    let (q, secs, _) =
        run_transer(TransErConfig::default(), &task, &classifiers, 42).expect("TransER completes");
    println!(
        "{:<8} F*={:.1}±{:.1}%  P={:.1}% R={:.1}%  ({secs:.1}s)",
        "TransER",
        q.f_star.0 * 100.0,
        q.f_star.1 * 100.0,
        q.precision.0 * 100.0,
        q.recall.0 * 100.0
    );

    for method in all_baselines() {
        match run_baseline(method.as_ref(), &task, &classifiers, 42, budget) {
            MethodOutcome::Ok { quality, secs } => println!(
                "{:<8} F*={:.1}±{:.1}%  P={:.1}% R={:.1}%  ({secs:.1}s)",
                method.name(),
                quality.f_star.0 * 100.0,
                quality.f_star.1 * 100.0,
                quality.precision.0 * 100.0,
                quality.recall.0 * 100.0
            ),
            MethodOutcome::MemoryExceeded => {
                println!("{:<8} ME (memory budget exceeded, as in the paper)", method.name());
            }
            MethodOutcome::TimeExceeded => {
                println!("{:<8} TE (time budget exceeded, as in the paper)", method.name());
            }
            MethodOutcome::Failed(e) => println!("{:<8} failed: {e}", method.name()),
        }
    }
}

//! Quickstart: the shortest path from two databases to transferred labels.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use transer::prelude::*;

fn main() {
    // 1. A transfer task: labelled DBLP-ACM-style source, unlabelled
    //    DBLP-Scholar-style target (synthetic stand-ins for the paper's
    //    data sets; `0.1` scales entity counts to a laptop-friendly size).
    let pair = ScenarioPair::Bibliographic.domain_pair(0.1, 42).expect("workload generation");
    println!(
        "task: {}  (source {} pairs, target {} pairs, {} features)",
        pair.label(),
        pair.source.len(),
        pair.target.len(),
        pair.num_features()
    );

    // 2. Run TransER with the paper's defaults. The classifier family is
    //    pluggable; the paper averages over SVM, random forest, logistic
    //    regression and decision tree.
    let transer = TransEr::new(TransErConfig::default(), ClassifierKind::LogisticRegression, 7)
        .expect("valid configuration");
    let output =
        transer.fit_predict(&pair.source.x, &pair.source.y, &pair.target.x).expect("pipeline");

    // 3. Evaluate against the target's held-out ground truth.
    let cm = evaluate(&output.labels, &pair.target.y);
    println!(
        "TransER:  P={:.3} R={:.3} F*={:.3} F1={:.3}",
        cm.precision(),
        cm.recall(),
        cm.f_star(),
        cm.f1()
    );

    // 4. Compare with the no-transfer baseline.
    let mut naive = ClassifierKind::LogisticRegression.build(7);
    naive.fit(&pair.source.x, &pair.source.y).expect("fit");
    let nm = evaluate(&naive.predict(&pair.target.x), &pair.target.y);
    println!(
        "Naive:    P={:.3} R={:.3} F*={:.3} F1={:.3}",
        nm.precision(),
        nm.recall(),
        nm.f_star(),
        nm.f1()
    );

    // 5. What the three phases did.
    let d = output.diagnostics;
    println!(
        "phases: SEL kept {}/{} source instances ({:.0}ms), GEN pseudo-labelled the target \
         ({:.0}ms), TCL trained on {} balanced high-confidence instances ({:.0}ms)",
        d.selected_count,
        d.source_count,
        d.sel_secs * 1000.0,
        d.gen_secs * 1000.0,
        d.balanced_count,
        d.tcl_secs * 1000.0
    );
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a small, std-only implementation of exactly the `rand` API
//! surface it uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`RngExt`] (`random`, `random_range`, `random_bool`) and the
//! [`seq::SliceRandom`] / [`seq::IndexedRandom`] helpers.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — a well-studied, public-domain design with 256 bits of
//! state. It is *not* the ChaCha12 generator of the real crate, so
//! absolute random streams differ from upstream `rand`, but every consumer
//! in this workspace only relies on determinism under a fixed seed and on
//! reasonable statistical quality, both of which hold.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types a generator can produce uniformly over their whole domain
/// (the stub's analogue of `rand::distr::StandardUniform` sampling).
pub trait Random: Sized {
    /// Draw one uniform value.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_uint {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Random for f32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

/// Map 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a generator can sample uniformly. Parameterised over the
/// output type (like real rand's `SampleRange<T>`) so integer literals in
/// range expressions infer their type from the call site.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by widening multiply (Lemire-style,
/// without the rejection step; the bias is < 2^-32 for every span this
/// workspace uses and determinism is what actually matters here).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return <$t as Random>::random_from(rng);
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + u * (self.end - self.start);
                // Floating rounding can land exactly on `end`; step inside.
                if v < self.end { v } else { <$t>::from_bits(self.end.to_bits() - 1) }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The user-facing sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniform value over the whole domain of `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// A uniform value from `range`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers: shuffling and random element selection.
pub mod seq {
    use super::{RngCore, RngExt};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher-Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Random element selection from slices.
    pub trait IndexedRandom {
        /// The element type.
        type Item;
        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(3..17u8);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(-0.25..0.25f64);
            assert!((-0.25..0.25).contains(&f));
            let u = rng.random_range(0..=0usize);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn range_values_cover_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 50 elements in order");
    }

    #[test]
    fn choose_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(6);
        let items = [1, 2, 3];
        let mut counts = [0usize; 3];
        for _ in 0..3_000 {
            counts[*items.choose(&mut rng).unwrap() - 1] += 1;
        }
        for c in counts {
            assert!(c > 800, "{counts:?}");
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

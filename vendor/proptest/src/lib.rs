//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a small property-testing engine covering the API surface its
//! test suites use:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(...)]` header),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * [`strategy::Strategy`] with `prop_map`,
//! * range strategies over integers and floats, tuple strategies,
//!   [`collection::vec`], [`any`], and regex-literal string strategies
//!   (character classes, groups and `{m,n}` repetition — the subset the
//!   suites use),
//! * [`test_runner::ProptestConfig`] with `with_cases` and the
//!   `PROPTEST_CASES` environment variable.
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test seed (hash of the test name), and failing
//! cases are reported **without shrinking** — the panic message carries
//! the exact failing inputs instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Test configuration, RNG and case-level error types.

    use std::hash::{DefaultHasher, Hash, Hasher};

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(32);
            ProptestConfig { cases }
        }
    }

    /// The deterministic generator driving strategy sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// A generator seeded from the test's name, so every run of the
        /// suite replays the same cases.
        pub fn for_test(name: &str) -> Self {
            let mut h = DefaultHasher::new();
            name.hash(&mut h);
            TestRng(StdRng::seed_from_u64(h.finish() ^ 0x70_72_6f_70))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Failure of a single generated case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property does not hold for these inputs.
        Fail(String),
        /// The inputs were rejected (e.g. by a filter); not a failure.
        Reject(String),
    }

    impl TestCaseError {
        /// Construct a failure with the given message.
        pub fn fail(msg: impl std::fmt::Display) -> Self {
            TestCaseError::Fail(msg.to_string())
        }

        /// Construct a rejection with the given message.
        pub fn reject(msg: impl std::fmt::Display) -> Self {
            TestCaseError::Reject(msg.to_string())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Per-case result type produced by property bodies.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    use rand::RngExt;

    use crate::string::generate_regex;
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategies behind references generate like the referent, which
    /// lets the `proptest!` macro sample without consuming.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// String literals act as regex-subset generators, as in real
    /// proptest: `"[a-z]{2,8}( [a-z]{2,8}){0,3}"`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_regex(self, rng)
        }
    }

    /// Owned-string form of the regex-subset generator.
    impl Strategy for String {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_regex(self, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);
}

pub mod arbitrary {
    //! The [`any`] entry point for whole-domain strategies.

    use std::fmt::Debug;
    use std::marker::PhantomData;

    use rand::{Random, RngExt};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating uniformly over the whole domain of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T> std::fmt::Debug for Any<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "any::<{}>()", std::any::type_name::<T>())
        }
    }

    impl<T: Random + Debug> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.random()
        }
    }

    /// A whole-domain strategy for `T`, e.g. `any::<u64>()`.
    pub fn any<T: Random + Debug>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies: [`vec`].

    use std::ops::{Range, RangeInclusive};

    use rand::RngExt;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive size interval for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of `element` values with lengths in `size`
    /// (a fixed `usize`, a `Range` or a `RangeInclusive`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod string {
    //! Generation from the regex subset used in string-literal strategies.

    use rand::RngExt;

    use crate::test_runner::TestRng;

    #[derive(Debug, Clone)]
    enum Node {
        Literal(char),
        Class(Vec<char>),
        Group(Vec<(Node, Rep)>),
    }

    #[derive(Debug, Clone, Copy)]
    struct Rep {
        lo: u32,
        hi: u32,
    }

    /// Generate one string matching `pattern`, a subset of regex syntax:
    /// literal characters, escaped literals, `[...]` character classes
    /// with ranges, `(...)` groups, and `{n}` / `{m,n}` / `?` / `*` / `+`
    /// repetition (`*`/`+` are capped at 8 repeats).
    ///
    /// # Panics
    /// Panics on syntax outside the supported subset, so unsupported
    /// patterns fail loudly rather than silently generating garbage.
    pub fn generate_regex(pattern: &str, rng: &mut TestRng) -> String {
        let mut chars = pattern.chars().peekable();
        let seq = parse_seq(&mut chars, pattern);
        assert!(chars.next().is_none(), "proptest stub: unbalanced ')' in regex {pattern:?}");
        let mut out = String::new();
        gen_seq(&seq, rng, &mut out);
        out
    }

    type CharIter<'a> = std::iter::Peekable<std::str::Chars<'a>>;

    fn parse_seq(chars: &mut CharIter<'_>, pattern: &str) -> Vec<(Node, Rep)> {
        let mut seq = Vec::new();
        while let Some(&c) = chars.peek() {
            if c == ')' {
                break;
            }
            chars.next();
            let node = match c {
                '[' => parse_class(chars, pattern),
                '(' => {
                    let inner = parse_seq(chars, pattern);
                    match chars.next() {
                        Some(')') => Node::Group(inner),
                        _ => panic!("proptest stub: unterminated group in regex {pattern:?}"),
                    }
                }
                '\\' => Node::Literal(
                    chars
                        .next()
                        .unwrap_or_else(|| panic!("proptest stub: trailing '\\' in {pattern:?}")),
                ),
                '.' | '|' | '^' | '$' => {
                    panic!("proptest stub: unsupported regex construct {c:?} in {pattern:?}")
                }
                lit => Node::Literal(lit),
            };
            let rep = parse_rep(chars, pattern);
            seq.push((node, rep));
        }
        seq
    }

    fn parse_class(chars: &mut CharIter<'_>, pattern: &str) -> Node {
        let mut members = Vec::new();
        loop {
            let c = chars
                .next()
                .unwrap_or_else(|| panic!("proptest stub: unterminated class in {pattern:?}"));
            match c {
                ']' => break,
                '\\' => members.push(chars.next().unwrap_or_else(|| {
                    panic!("proptest stub: trailing '\\' in class in {pattern:?}")
                })),
                lo => {
                    if chars.peek() == Some(&'-') {
                        // Lookahead: `-` is a range only when not last.
                        let mut ahead = chars.clone();
                        ahead.next();
                        match ahead.peek() {
                            Some(&hi) if hi != ']' => {
                                chars.next();
                                chars.next();
                                assert!(
                                    lo <= hi,
                                    "proptest stub: inverted range {lo}-{hi} in {pattern:?}"
                                );
                                members.extend(lo..=hi);
                            }
                            _ => members.push(lo),
                        }
                    } else {
                        members.push(lo);
                    }
                }
            }
        }
        assert!(!members.is_empty(), "proptest stub: empty class in {pattern:?}");
        Node::Class(members)
    }

    fn parse_rep(chars: &mut CharIter<'_>, pattern: &str) -> Rep {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        let (lo, hi) = match spec.split_once(',') {
                            Some((a, b)) => (
                                a.trim().parse().unwrap_or_else(|_| {
                                    panic!("proptest stub: bad repeat {spec:?} in {pattern:?}")
                                }),
                                b.trim().parse().unwrap_or_else(|_| {
                                    panic!("proptest stub: bad repeat {spec:?} in {pattern:?}")
                                }),
                            ),
                            None => {
                                let n = spec.trim().parse().unwrap_or_else(|_| {
                                    panic!("proptest stub: bad repeat {spec:?} in {pattern:?}")
                                });
                                (n, n)
                            }
                        };
                        assert!(lo <= hi, "proptest stub: inverted repeat in {pattern:?}");
                        return Rep { lo, hi };
                    }
                    spec.push(c);
                }
                panic!("proptest stub: unterminated repeat in {pattern:?}")
            }
            Some('?') => {
                chars.next();
                Rep { lo: 0, hi: 1 }
            }
            Some('*') => {
                chars.next();
                Rep { lo: 0, hi: 8 }
            }
            Some('+') => {
                chars.next();
                Rep { lo: 1, hi: 8 }
            }
            _ => Rep { lo: 1, hi: 1 },
        }
    }

    fn gen_seq(seq: &[(Node, Rep)], rng: &mut TestRng, out: &mut String) {
        for (node, rep) in seq {
            let n = rng.random_range(rep.lo..=rep.hi);
            for _ in 0..n {
                match node {
                    Node::Literal(c) => out.push(*c),
                    Node::Class(members) => out.push(members[rng.random_range(0..members.len())]),
                    Node::Group(inner) => gen_seq(inner, rng, out),
                }
            }
        }
    }
}

/// Everything a property-test module needs, mirroring
/// `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` namespace alias used as `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::{collection, string};
    }
}

/// Define property tests. Supports the same shape as real proptest:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, s in "[a-z]{1,8}") { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__cfg.cases {
                    let __vals = ($(
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng),
                    )*);
                    let __repr = ::std::format!("{:?}", __vals);
                    let ($($pat,)*) = __vals;
                    let __result: $crate::test_runner::TestCaseResult =
                        (|| -> $crate::test_runner::TestCaseResult {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            ::std::panic!(
                                "proptest case #{} of {} failed: {}\n  inputs: {}",
                                __case, stringify!($name), __msg, __repr
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a property body; failure reports the
/// generated inputs instead of panicking immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assert_eq failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assert_eq failed: {:?} != {:?}: {}", l, r,
            ::std::format!($($fmt)*));
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assert_ne failed: both {:?}", l);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_subset_shapes() {
        let mut rng = TestRng::for_test("regex");
        for _ in 0..200 {
            let w = crate::string::generate_regex("[a-z]{2,8}( [a-z]{2,8}){0,3}", &mut rng);
            let parts: Vec<&str> = w.split(' ').collect();
            assert!((1..=4).contains(&parts.len()), "{w:?}");
            for p in parts {
                assert!((2..=8).contains(&p.len()), "{w:?}");
                assert!(p.chars().all(|c| c.is_ascii_lowercase()), "{w:?}");
            }
            let v = crate::string::generate_regex("[a-z '\\-]{0,24}", &mut rng);
            assert!(v.len() <= 24);
            assert!(v.chars().all(|c| c.is_ascii_lowercase() || " '-".contains(c)), "{v:?}");
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::for_test("vec");
        let s = prop::collection::vec(0.0..1.0f64, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
        let fixed = prop::collection::vec(0u8..10, 7usize);
        assert_eq!(fixed.generate(&mut rng).len(), 7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_end_to_end(x in 0u64..100, (a, b) in (0u8..10, 0u8..10), w in "[a-z]{1,4}") {
            prop_assert!(x < 100);
            prop_assert!(a < 10 && b < 10);
            prop_assert!(!w.is_empty() && w.len() <= 4);
            prop_assert_eq!(x, x);
            prop_assert_ne!(w.len(), 0usize);
        }

        #[test]
        fn prop_map_composes(v in prop::collection::vec(0u8..=10, 1..6)
            .prop_map(|v| v.into_iter().map(|x| x as f64 / 10.0).collect::<Vec<_>>())) {
            prop_assert!(v.iter().all(|x| (0.0..=1.0).contains(x)));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case #")]
    // The nested proptest! expansion defines a #[test] fn that is only
    // callable from here, which is the point of the test.
    #[allow(unnameable_test_items)]
    fn failures_report_inputs() {
        proptest! {
            #[test]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}

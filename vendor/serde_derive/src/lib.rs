//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` against the vendored `serde` stub's
//! `to_value` data model. The macro parses the item's token stream by hand
//! (no `syn`/`quote` — the build environment has no crates.io access) and
//! supports what this workspace derives on:
//!
//! * structs with named fields, tuple structs and unit structs;
//! * enums with unit, newtype, tuple and struct variants (externally
//!   tagged, like real serde's default representation).
//!
//! Generic items and `#[serde(...)]` attributes are intentionally
//! unsupported and panic at expansion time so misuse is loud.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (the vendored stub's trait) for an item.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive: generic items are not supported (deriving on `{name}`)");
    }

    let body = match kind.as_str() {
        "struct" => derive_struct(&name, &tokens[i..]),
        "enum" => derive_enum(&name, &tokens[i..]),
        other => panic!("serde stub derive: cannot derive Serialize for `{other}`"),
    };

    let out = format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    );
    out.parse().expect("serde stub derive: generated impl failed to parse")
}

fn derive_struct(_name: &str, rest: &[TokenTree]) -> String {
    match rest.first() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = parse_named_fields(g.stream());
            if fields.is_empty() {
                return "::serde::Value::Object(::std::vec::Vec::new())".to_string();
            }
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", entries.join(", "))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let n = count_tuple_fields(g.stream());
            match n {
                0 => "::serde::Value::Null".to_string(),
                // Newtype structs serialise transparently, as in real serde.
                1 => "::serde::Serialize::to_value(&self.0)".to_string(),
                _ => {
                    let items: Vec<String> = (0..n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                }
            }
        }
        // Unit struct (`struct X;`).
        _ => "::serde::Value::Null".to_string(),
    }
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn derive_enum(name: &str, rest: &[TokenTree]) -> String {
    let body = match rest.first() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde stub derive: malformed enum `{name}`: {other:?}"),
    };
    let variants = parse_variants(body);
    if variants.is_empty() {
        return "match *self {}".to_string();
    }
    let mut arms = Vec::new();
    for (vname, shape) in &variants {
        let arm = match shape {
            VariantShape::Unit => format!(
                "{name}::{vname} => \
                 ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
            ),
            VariantShape::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                let inner = if *n == 1 {
                    "::serde::Serialize::to_value(__f0)".to_string()
                } else {
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                };
                format!(
                    "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![\
                     (::std::string::String::from(\"{vname}\"), {inner})]),",
                    binds.join(", ")
                )
            }
            VariantShape::Struct(fields) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_value({f}))"
                        )
                    })
                    .collect();
                format!(
                    "{name}::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![\
                     (::std::string::String::from(\"{vname}\"), \
                     ::serde::Value::Object(::std::vec![{}]))]),",
                    fields.join(", "),
                    entries.join(", ")
                )
            }
        };
        arms.push(arm);
    }
    format!("match self {{ {} }}", arms.join("\n"))
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        match tokens.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => *i += 1,
            other => panic!("serde stub derive: malformed attribute: {other:?}"),
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

/// Skip a type (or discriminant expression) until a top-level comma,
/// tracking `<`/`>` nesting so commas inside generics don't split fields.
fn skip_until_top_level_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stub derive: expected field name, found {other}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde stub derive: expected `:` after `{field}`, found {other:?}"),
        }
        skip_until_top_level_comma(&tokens, &mut i);
        fields.push(field);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_until_top_level_comma(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, VariantShape)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let vname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stub derive: expected variant name, found {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant and/or the separating comma.
        skip_until_top_level_comma(&tokens, &mut i);
        variants.push((vname, shape));
    }
    variants
}

//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal serialisation framework covering what it uses:
//! `#[derive(Serialize)]` on structs and enums, and
//! `serde_json::to_string{,_pretty}`. Instead of the real serde data
//! model (visitors and serializer traits), [`Serialize`] converts a value
//! into an owned JSON-shaped [`Value`] tree that `serde_json` renders.
//! That is a simplification the workspace can afford because JSON is the
//! only format it ever serialises to, and nothing implements
//! `Deserialize`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// A JSON-shaped value tree — the stub's serialisation data model.
///
/// Object fields keep insertion order so derived output lists struct
/// fields in declaration order, like real `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (rendered without a decimal point).
    Int(i64),
    /// Unsigned integer (rendered without a decimal point).
    UInt(u64),
    /// Floating-point number; non-finite values render as `null`.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with ordered fields.
    Object(Vec<(String, Value)>),
}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into the JSON-shaped data model.
    fn to_value(&self) -> Value;
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output; real serde_json preserves the
        // map's iteration order, which for HashMap is already arbitrary.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(5u32.to_value(), Value::UInt(5));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
    }

    #[test]
    fn containers() {
        assert_eq!(vec![1u8, 2].to_value(), Value::Array(vec![Value::UInt(1), Value::UInt(2)]));
        assert_eq!(
            (1u8, "a").to_value(),
            Value::Array(vec![Value::UInt(1), Value::Str("a".into())])
        );
    }
}

//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` stub's [`serde::Value`] tree as JSON text.
//! Covers the workspace's usage: [`to_string`] and [`to_string_pretty`]
//! (two-space indentation, `": "` separators, like real `serde_json`).
//! Non-finite floats render as `null`, matching `serde_json::Value`'s
//! behaviour rather than erroring.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Serialize, Value};

/// Serialisation error. The stub's renderer is total, so this is never
/// actually produced, but the type keeps call sites source-compatible
/// with real `serde_json`.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON serialisation error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialise `value` as compact JSON.
///
/// # Errors
/// Never fails in the stub; the `Result` mirrors real `serde_json`.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialise `value` as pretty-printed JSON (two-space indentation).
///
/// # Errors
/// Never fails in the stub; the `Result` mirrors real `serde_json`.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, v, d| {
                write_value(o, v, indent, d)
            })
        }
        Value::Object(fields) => {
            write_seq(out, fields.iter(), indent, depth, ('{', '}'), |o, (k, v), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, v, indent, d);
            })
        }
    }
}

fn write_seq<I, F>(
    out: &mut String,
    items: I,
    indent: Option<&str>,
    depth: usize,
    delims: (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, usize),
{
    out.push(delims.0);
    if items.len() == 0 {
        out.push(delims.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(pad);
            }
        }
        write_item(out, item, depth + 1);
    }
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
    out.push(delims.1);
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // Match serde_json's convention that floats always carry a decimal
    // point or exponent, so integral floats round-trip as floats.
    let s = f.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        assert_eq!(to_string(&vec![1u8, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_string(&(1u8, "a")).unwrap(), "[1,\"a\"]");
        assert_eq!(to_string(&Some(2.5f64)).unwrap(), "2.5");
        assert_eq!(to_string(&None::<f64>).unwrap(), "null");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(to_string("a\"b\\c\nd").unwrap(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(to_string("\u{1}").unwrap(), "\"\\u0001\"");
    }

    #[test]
    fn pretty_rendering() {
        let v = serde::Value::Object(vec![
            ("a".into(), serde::Value::UInt(1)),
            ("b".into(), serde::Value::Array(vec![serde::Value::Bool(true)])),
        ]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
        assert_eq!(to_string_pretty(&Vec::<u8>::new()).unwrap(), "[]");
    }

    #[derive(serde::Serialize)]
    struct Demo {
        name: String,
        score: (f64, f64),
        tags: Vec<String>,
        note: Option<String>,
    }

    #[derive(serde::Serialize)]
    enum Outcome {
        Ok { quality: f64, secs: f64 },
        MemoryExceeded,
        Failed(String),
        Pair(u8, u8),
    }

    #[test]
    fn derived_struct() {
        let d = Demo { name: "x".into(), score: (0.5, 0.1), tags: vec!["a".into()], note: None };
        assert_eq!(
            to_string(&d).unwrap(),
            "{\"name\":\"x\",\"score\":[0.5,0.1],\"tags\":[\"a\"],\"note\":null}"
        );
    }

    #[test]
    fn derived_enum() {
        assert_eq!(
            to_string(&Outcome::Ok { quality: 1.0, secs: 2.0 }).unwrap(),
            "{\"Ok\":{\"quality\":1.0,\"secs\":2.0}}"
        );
        assert_eq!(to_string(&Outcome::MemoryExceeded).unwrap(), "\"MemoryExceeded\"");
        assert_eq!(to_string(&Outcome::Failed("e".into())).unwrap(), "{\"Failed\":\"e\"}");
        assert_eq!(to_string(&Outcome::Pair(1, 2)).unwrap(), "{\"Pair\":[1,2]}");
    }
}

//! Offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal wall-clock benchmarking harness exposing the
//! criterion API surface its benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], `bench_function`, `bench_with_input`,
//! `sample_size`, [`BenchmarkId`], [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Each benchmark is calibrated so one sample costs roughly
//! [`TARGET_SAMPLE_NANOS`], then `sample_size` samples are timed and the
//! minimum / median / maximum per-iteration times are printed in a
//! criterion-like format. There is no statistical analysis, HTML report
//! or saved baseline — this harness exists so `cargo bench` produces
//! honest relative numbers offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Target wall-clock cost of one measurement sample, in nanoseconds.
pub const TARGET_SAMPLE_NANOS: u64 = 5_000_000;

/// Re-export of [`std::hint::black_box`], which real criterion also
/// provides at its root.
pub use std::hint::black_box;

/// The benchmark manager handed to `criterion_group!` target functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== group: {name}");
        BenchmarkGroup { _criterion: self, group: name, sample_size: 20 }
    }

    /// Benchmark a closure under `id` (no group).
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), 20, &mut f);
        self
    }
}

/// A set of benchmarks sharing a name prefix and sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.group, id);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Benchmark a closure receiving `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.group, id);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Finish the group (printing is already done per-benchmark).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Identifier for `name` at parameter `param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId { name: name.into(), param: param.to_string() }
    }

    /// Identifier carrying only a parameter rendering.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId { name: String::new(), param: param.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.name.is_empty() {
            write!(f, "{}", self.param)
        } else {
            write!(f, "{}/{}", self.name, self.param)
        }
    }
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code
/// under test.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed_nanos: u128,
}

impl Bencher {
    /// Time `iters` executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_nanos = start.elapsed().as_nanos();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    // Calibration: start from one iteration and grow until a sample is
    // expensive enough to time reliably.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher { iters, elapsed_nanos: 0 };
        f(&mut b);
        if b.elapsed_nanos >= u128::from(TARGET_SAMPLE_NANOS) || iters >= 1 << 30 {
            break;
        }
        // Aim straight for the target based on the observed cost.
        let per_iter = (b.elapsed_nanos / u128::from(iters)).max(1);
        let needed = (u128::from(TARGET_SAMPLE_NANOS) / per_iter).max(1) as u64;
        if needed <= iters {
            break;
        }
        iters = needed.min(iters.saturating_mul(100)).min(1 << 30);
    }

    let mut per_iter_nanos: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher { iters, elapsed_nanos: 0 };
            f(&mut b);
            b.elapsed_nanos as f64 / iters as f64
        })
        .collect();
    per_iter_nanos.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter_nanos[0];
    let med = per_iter_nanos[per_iter_nanos.len() / 2];
    let max = per_iter_nanos[per_iter_nanos.len() - 1];
    eprintln!(
        "{label:<60} time: [{} {} {}]  ({iters} iters x {samples} samples)",
        fmt_nanos(min),
        fmt_nanos(med),
        fmt_nanos(max),
    );
}

fn fmt_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declare a group of benchmark target functions, mirroring criterion's
/// simple form: `criterion_group!(benches, bench_a, bench_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench binary's `main`, mirroring criterion:
/// `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_smoke() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        c.bench_function("free", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn id_renders_name_and_param() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
